package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/vfs"
	"repro/internal/warehouse"
)

// boot starts an in-process pxserve: warehouse on a temp dir behind an
// httptest server.
func boot(t *testing.T) *httptest.Server {
	t.Helper()
	wh, err := warehouse.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() }) //nolint:errcheck
	ts := httptest.NewServer(server.New(wh, server.Options{CacheSize: 64}))
	t.Cleanup(ts.Close)
	return ts
}

// bootFaulty is boot with a fault-injecting filesystem.
func bootFaulty(t *testing.T) (*httptest.Server, *vfs.Injector) {
	t.Helper()
	inj := vfs.NewInjector()
	wh, err := warehouse.OpenFS(t.TempDir(), vfs.NewFaultFS(vfs.OS, inj))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() }) //nolint:errcheck
	ts := httptest.NewServer(server.New(wh, server.Options{CacheSize: 64}))
	t.Cleanup(ts.Close)
	return ts, inj
}

func testConfig(ts *httptest.Server) Config {
	return Config{
		Endpoint:      ts.URL,
		Tenants:       8,
		DocsPerTenant: 2,
		Seed:          42,
		Ops:           600,
		Workers:       4,
		CheckEvery:    5,
		HTTPClient:    ts.Client(),
	}
}

// TestRunZeroDiscrepancies is the core acceptance check: a mixed
// 8-tenant workload with spot checks on, against a healthy server,
// must audit with zero discrepancies — every update statistic matched,
// every content hash resolved, every counter reconciled.
func TestRunZeroDiscrepancies(t *testing.T) {
	ts := boot(t)
	rep, err := Run(context.Background(), testConfig(ts))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audit.DiscrepancyCount != 0 {
		t.Fatalf("audit found %d discrepancies:\n%s",
			rep.Audit.DiscrepancyCount, strings.Join(rep.Audit.Discrepancies, "\n"))
	}
	if rep.Ops != 600 {
		t.Errorf("executed %d ops, want 600", rep.Ops)
	}
	if rep.Audit.Checks < 100 {
		t.Errorf("audit performed only %d checks", rep.Audit.Checks)
	}
	if rep.Audit.Degraded {
		t.Error("healthy run reports degraded")
	}
	if rep.EventsPerSec <= 0 {
		t.Errorf("events/sec = %g", rep.EventsPerSec)
	}
	if len(rep.Routes) == 0 {
		t.Fatal("report has no route measurements")
	}
	seen := make(map[string]bool)
	for _, rr := range rep.Routes {
		seen[rr.Route] = true
		if rr.Requests > 0 && rr.P50MS < 0 {
			t.Errorf("route %s: negative p50", rr.Route)
		}
	}
	for _, want := range []string{server.RouteQuery, server.RouteUpdate, server.RouteCreate} {
		if !seen[want] {
			t.Errorf("report missing route %s", want)
		}
	}
	if rep.Fingerprint == "" {
		t.Error("empty model fingerprint")
	}
}

// TestDeterminism pins the reproducibility contract: two runs with the
// same seed against fresh warehouses produce byte-identical workload
// logs and identical expected-state model fingerprints; a different
// seed produces a different log.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) (string, string) {
		ts := boot(t)
		var log bytes.Buffer
		cfg := testConfig(ts)
		cfg.Seed = seed
		cfg.Ops = 400
		cfg.LogW = &log
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Audit.DiscrepancyCount != 0 {
			t.Fatalf("seed %d: %d discrepancies:\n%s", seed,
				rep.Audit.DiscrepancyCount, strings.Join(rep.Audit.Discrepancies, "\n"))
		}
		return log.String(), rep.Fingerprint
	}
	log1, fp1 := run(7)
	log2, fp2 := run(7)
	if log1 != log2 {
		t.Error("equal-seed runs produced different workload logs")
	}
	if fp1 != fp2 {
		t.Error("equal-seed runs produced different model fingerprints")
	}
	if log1 == "" {
		t.Fatal("empty workload log")
	}
	log3, _ := run(8)
	if log1 == log3 {
		t.Error("different seeds produced identical workload logs")
	}
}

// TestAuditDetectsOutOfBandWrite is the negative control: the harness
// must actually be able to fail. An update slipped in between drain
// and audit — exactly what a lost-update bug would look like from the
// ledger's point of view — must surface as discrepancies in the
// counter reconciliation and the content hash comparison.
func TestAuditDetectsOutOfBandWrite(t *testing.T) {
	ts := boot(t)
	cfg := testConfig(ts)
	cfg.Ops = 200
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := r.RunWorkload(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The out-of-band write: not in any client ledger, not applied to
	// the shadow.
	body, _ := json.Marshal(server.UpdateRequest{
		Query:      "A $a",
		Confidence: 1,
		Ops:        []server.UpdateOp{{Op: "insert", Var: "a", Tree: "Z:intruder"}},
	})
	resp, err := ts.Client().Post(ts.URL+"/docs/t0-d0/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("out-of-band update = %d", resp.StatusCode)
	}

	audit, err := r.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if audit.DiscrepancyCount == 0 {
		t.Fatal("audit missed the out-of-band write")
	}
	all := strings.Join(audit.Discrepancies, "\n")
	if !strings.Contains(all, "stats: route POST /docs/{name}/update") {
		t.Errorf("no counter discrepancy reported:\n%s", all)
	}
	if !strings.Contains(all, "content hash") {
		t.Errorf("no content discrepancy reported:\n%s", all)
	}
}

// TestFaultReconciliation pins the degraded-mode audit semantics: a
// journal fsync fault injected mid-run degrades the warehouse; the op
// that hit the fault has ambiguous server-side state (the audit
// resolves it from the observed content), every later write is an
// upfront 503 rejection, and the audit reconciles all of it with zero
// discrepancies instead of false-failing.
func TestFaultReconciliation(t *testing.T) {
	ts, inj := bootFaulty(t)
	cfg := testConfig(ts)
	cfg.Ops = 300
	// Update-heavy so the fault lands quickly and plenty of degraded
	// rejections follow.
	cfg.Mix = Mix{OpQuery: 20, OpSearch: 5, OpUpdate: 45, OpViewRead: 10, OpRegisterView: 5, OpRead: 15}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Setup(); err != nil {
		t.Fatal(err)
	}
	inj.Set("journal.sync", vfs.Fault{Count: 1})
	if err := r.RunWorkload(context.Background()); err != nil {
		t.Fatal(err)
	}
	audit, err := r.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Degraded {
		t.Fatal("fault never degraded the warehouse (fault not hit?)")
	}
	if audit.DiscrepancyCount != 0 {
		t.Fatalf("audit false-failed under injected fault: %d discrepancies:\n%s",
			audit.DiscrepancyCount, strings.Join(audit.Discrepancies, "\n"))
	}
	if audit.FailedWrites == 0 {
		t.Error("degraded run reports no failed writes")
	}
	if audit.AmbiguousApplied+audit.AmbiguousAborted == 0 {
		t.Error("the faulted write was never resolved as applied or aborted")
	}
}

// TestClientLadderMatchesServer pins that the client-side latency
// histograms use exactly the shared obs bucket ladder, the property
// that makes pxsim's client percentiles comparable with the server's
// px_http_request_seconds series.
func TestClientLadderMatchesServer(t *testing.T) {
	c := newClient("http://localhost:0", nil, nil)
	for route, rs := range c.routes {
		bounds := rs.hist.Bounds()
		if len(bounds) != len(obs.DefaultBuckets) {
			t.Fatalf("route %s: %d bounds, want %d", route, len(bounds), len(obs.DefaultBuckets))
		}
		for i := range bounds {
			if bounds[i] != obs.DefaultBuckets[i] {
				t.Errorf("route %s: bound[%d] = %g, want %g", route, i, bounds[i], obs.DefaultBuckets[i])
			}
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("query=40, update=10,search=0")
	if err != nil {
		t.Fatal(err)
	}
	if m[OpQuery] != 40 || m[OpUpdate] != 10 || m[OpSearch] != 0 {
		t.Errorf("parsed %v", m)
	}
	if got := m.String(); got != "query=40,update=10" {
		t.Errorf("canonical form %q", got)
	}
	for _, bad := range []string{"", "query", "query=-1", "frobnicate=3", "query=x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) succeeded", bad)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	if b := newTokenBucket(0, 4); b != nil {
		t.Error("rate 0 should disable the bucket")
	}
	b := newTokenBucket(500, 1)
	start := time.Now()
	for i := 0; i < 6; i++ {
		b.take()
	}
	// Burst 1 at 500/s: 6 takes need ≥ ~10ms of refill. Generous upper
	// bound keeps slow CI green.
	if el := time.Since(start); el < 5*time.Millisecond || el > 10*time.Second {
		t.Errorf("6 takes at 500/s burst 1 took %v", el)
	}
}

// TestGeneratorStreamIsPure pins that generation alone (no execution)
// is deterministic and never emits an unrunnable op: every view read
// names a previously registered view, every op targets a document in
// the grid.
func TestGeneratorStreamIsPure(t *testing.T) {
	docs := docNames(3, 2)
	mk := func() []string {
		g := newGenerator(99, docs, DefaultMix(), 1.2, 4)
		var lines []string
		registered := make(map[string]map[string]bool)
		for _, d := range docs {
			registered[d] = make(map[string]bool)
		}
		for i := 0; i < 500; i++ {
			op := g.next()
			if _, ok := registered[op.Doc]; !ok {
				t.Fatalf("op %d targets unknown doc %q", op.Seq, op.Doc)
			}
			switch op.Kind {
			case OpRegisterView:
				registered[op.Doc][op.ViewName] = true
			case OpViewRead:
				if !registered[op.Doc][op.ViewName] {
					t.Fatalf("op %d reads unregistered view %s/%s", op.Seq, op.Doc, op.ViewName)
				}
			}
			lines = append(lines, op.logLine())
		}
		return lines
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation diverged at op %d:\n%s\n%s", i, a[i], b[i])
		}
	}
}
