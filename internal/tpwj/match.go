package tpwj

import (
	"repro/internal/obs"
	"repro/internal/tree"
)

// Matcher work counters: every enumeration charges how many pattern-node
// assignments it attempted and how many complete valuations it emitted.
// They live on the obs default registry next to the engine counters and
// feed both /metrics and per-request ?explain=1 cost breakdowns.
var (
	tpwjNodesVisited = obs.Default().Counter("px_tpwj_nodes_visited_total", "pattern-node assignment attempts by the tree-pattern matcher")
	tpwjMatchesTried = obs.Default().Counter("px_tpwj_matches_total", "complete valuations emitted by the tree-pattern matcher")
)

// Match is a valuation: a mapping from every positive pattern node to a
// document node, preserving the pattern's edges, label tests, value
// tests and joins. Valuations need not be injective (two pattern nodes
// may map to the same document node). Forbidden pattern nodes never
// appear in a Match.
type Match map[*PNode]*tree.Node

// Clone returns a copy of the match.
func (m Match) Clone() Match {
	c := make(Match, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Binding returns the document node matched by the pattern node bound to
// the given variable, or nil.
func (m Match) Binding(q *Query, varName string) *tree.Node {
	for p, n := range m {
		if p.Var == varName {
			return n
		}
	}
	return nil
}

// nodeMatches reports whether the local tests of p hold at n.
func nodeMatches(p *PNode, n *tree.Node) bool {
	if p.Label != Wildcard && p.Label != n.Label {
		return false
	}
	if p.HasValue && n.Value != p.Value {
		return false
	}
	return true
}

// matcher carries the state of one enumeration.
type matcher struct {
	q  *Query
	ix *tree.Index
	m  Match
	// checkForbidden applies forbidden sub-patterns as existence filters
	// (plain-tree semantics). The fuzzy evaluator disables it and turns
	// forbidden sub-matches into negated formula parts instead, because
	// a forbidden node may exist in some worlds only.
	checkForbidden bool
	joinPartners   map[string][]string
	vars           map[string]*PNode
	fn             func(Match) bool
	// visited / matches tally assignment attempts and emitted valuations
	// for cost accounting; flushed once per enumeration.
	visited int64
	matches int64
}

// ForEachMatch enumerates all valuations of q in the indexed document, in
// a deterministic order (document preorder at each pattern node,
// depth-first over pattern nodes). Forbidden sub-patterns exclude
// assignments under which they match; with q.Ordered, sibling pattern
// nodes must match in strict document order. fn returning false stops
// the enumeration. The match passed to fn is reused between calls; clone
// it to retain it.
func ForEachMatch(q *Query, ix *tree.Index, fn func(Match) bool) error {
	return forEachMatch(q, ix, true, nil, fn)
}

func forEachMatch(q *Query, ix *tree.Index, checkForbidden bool, cost *obs.Cost, fn func(Match) bool) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if ix.Root() == nil {
		return nil
	}
	mt := &matcher{
		q:              q,
		ix:             ix,
		m:              make(Match, q.Size()),
		checkForbidden: checkForbidden,
		joinPartners:   make(map[string][]string),
		vars:           q.Vars(),
		fn:             fn,
	}
	for _, j := range q.Joins {
		mt.joinPartners[j.Left] = append(mt.joinPartners[j.Left], j.Right)
		mt.joinPartners[j.Right] = append(mt.joinPartners[j.Right], j.Left)
	}
	defer func() {
		obs.Charge(cost, obs.CostTpwjNodesVisited, tpwjNodesVisited, mt.visited)
		obs.Charge(cost, obs.CostTpwjMatchesTried, tpwjMatchesTried, mt.matches)
	}()

	emit := func() bool { mt.matches++; return fn(mt.m) }
	switch {
	case q.Root.Desc && q.Root.Label != Wildcard:
		// Unanchored root with a concrete label: start from the label
		// index (document preorder) instead of scanning every node.
		for _, n := range ix.ByLabel(q.Root.Label) {
			if !mt.assign(q.Root, n, emit) {
				break
			}
		}
	case q.Root.Desc:
		ix.Root().Walk(func(n *tree.Node) bool {
			return mt.assign(q.Root, n, emit)
		})
	default:
		mt.assign(q.Root, ix.Root(), emit)
	}
	return nil
}

// joinsOK checks every join constraint for which both sides are bound.
func (mt *matcher) joinsOK(p *PNode) bool {
	if p.Var == "" {
		return true
	}
	mine := mt.m[p]
	for _, other := range mt.joinPartners[p.Var] {
		op := mt.vars[other]
		on, bound := mt.m[op]
		if !bound {
			continue
		}
		if on.Value != mine.Value {
			return false
		}
	}
	return true
}

// assign binds pattern node p to document node n and recurses into p's
// children in continuation-passing style, so that all combinations are
// enumerated. Returns false to abort the whole enumeration.
func (mt *matcher) assign(p *PNode, n *tree.Node, cont func() bool) bool {
	mt.visited++
	if !nodeMatches(p, n) {
		return true
	}
	mt.m[p] = n
	ok := true
	if mt.joinsOK(p) && mt.forbiddenOK(p, n) {
		ok = mt.assignChildren(p, 0, -1, cont)
	}
	delete(mt.m, p)
	return ok
}

// forbiddenOK applies the forbidden children of p as not-exists filters
// (plain-tree semantics only).
func (mt *matcher) forbiddenOK(p *PNode, n *tree.Node) bool {
	if !mt.checkForbidden {
		return true
	}
	for _, pc := range p.Children {
		if pc.Forbidden && ExistsSubMatch(mt.ix, pc, n) {
			return false
		}
	}
	return true
}

// assignChildren binds the positive children of p starting at index i.
// minOrder carries the preorder position of the previously bound sibling
// when the query is ordered (-1 initially).
func (mt *matcher) assignChildren(p *PNode, i, minOrder int, cont func() bool) bool {
	for i < len(p.Children) && p.Children[i].Forbidden {
		i++ // forbidden children are filters, not bindings
	}
	if i == len(p.Children) {
		return cont()
	}
	pc := p.Children[i]
	n := mt.m[p]
	try := func(c *tree.Node) bool {
		if mt.q.Ordered && mt.ix.Order(c) <= minOrder {
			return true
		}
		nextMin := minOrder
		if mt.q.Ordered {
			nextMin = mt.ix.Order(c)
		}
		return mt.assign(pc, c, func() bool {
			return mt.assignChildren(p, i+1, nextMin, cont)
		})
	}
	if pc.Desc {
		// Candidate enumeration strategy: when the label test is
		// concrete and the document-wide label list is smaller than the
		// anchored subtree, scan the label index filtered by ancestry
		// instead of walking the whole subtree. Both strategies visit
		// candidates in document preorder, so enumeration order (and the
		// ordered-matching semantics) is unchanged.
		if pc.Label != Wildcard {
			if byLabel := mt.ix.ByLabel(pc.Label); len(byLabel) < mt.ix.SubtreeSize(n) {
				for _, d := range byLabel {
					if d == n || !mt.ix.IsAncestor(n, d) {
						continue
					}
					if !try(d) {
						return false
					}
				}
				return true
			}
		}
		for _, c := range n.Children {
			aborted := false
			c.Walk(func(d *tree.Node) bool {
				if !try(d) {
					aborted = true
					return false
				}
				return true
			})
			if aborted {
				return false
			}
		}
		return true
	}
	for _, c := range n.Children {
		if !try(c) {
			return false
		}
	}
	return true
}

// ExistsSubMatch reports whether the sub-pattern pc (positive, without
// joins — as inside forbidden subtrees) has at least one valuation
// anchored at n: pc matches a child of n, or any proper descendant when
// pc.Desc is set.
func ExistsSubMatch(ix *tree.Index, pc *PNode, n *tree.Node) bool {
	found := false
	ForEachSubMatch(ix, pc, n, func(Match) bool {
		found = true
		return false
	})
	return found
}

// ForEachSubMatch enumerates the valuations of the sub-pattern pc
// anchored at n (ignoring the Forbidden flag of pc itself; pc's subtree
// must be positive and join-free). The match passed to fn is reused;
// clone to retain. fn returning false stops the enumeration.
func ForEachSubMatch(ix *tree.Index, pc *PNode, anchor *tree.Node, fn func(Match) bool) {
	m := make(Match, pc.Size())

	var assign func(p *PNode, n *tree.Node, cont func() bool) bool
	var children func(p *PNode, i int, cont func() bool) bool

	assign = func(p *PNode, n *tree.Node, cont func() bool) bool {
		if !nodeMatches(p, n) {
			return true
		}
		m[p] = n
		ok := children(p, 0, cont)
		delete(m, p)
		return ok
	}
	children = func(p *PNode, i int, cont func() bool) bool {
		if i == len(p.Children) {
			return cont()
		}
		pc := p.Children[i]
		n := m[p]
		next := func(c *tree.Node) bool {
			return assign(pc, c, func() bool { return children(p, i+1, cont) })
		}
		if pc.Desc {
			for _, c := range n.Children {
				aborted := false
				c.Walk(func(d *tree.Node) bool {
					if !next(d) {
						aborted = true
						return false
					}
					return true
				})
				if aborted {
					return false
				}
			}
			return true
		}
		for _, c := range n.Children {
			if !next(c) {
				return false
			}
		}
		return true
	}

	emit := func() bool { return fn(m) }
	if pc.Desc {
		for _, c := range anchor.Children {
			aborted := false
			c.Walk(func(d *tree.Node) bool {
				if !assign(pc, d, emit) {
					aborted = true
					return false
				}
				return true
			})
			if aborted {
				return
			}
		}
		return
	}
	for _, c := range anchor.Children {
		if !assign(pc, c, emit) {
			return
		}
	}
}

// FindMatches collects all valuations of q in the document.
func FindMatches(q *Query, ix *tree.Index) ([]Match, error) {
	var out []Match
	err := ForEachMatch(q, ix, func(m Match) bool {
		out = append(out, m.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CountMatches returns the number of valuations of q in the document.
func CountMatches(q *Query, ix *tree.Index) (int, error) {
	n := 0
	err := ForEachMatch(q, ix, func(Match) bool {
		n++
		return true
	})
	return n, err
}

// Selects reports whether q has at least one valuation in the document
// (the paper's "t is selected by Q").
func Selects(q *Query, doc *tree.Node) (bool, error) {
	found := false
	err := ForEachMatch(q, tree.NewIndex(doc), func(Match) bool {
		found = true
		return false
	})
	return found, err
}
