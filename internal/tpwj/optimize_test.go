package tpwj

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/tree"
)

// bigDoc builds a skewed document: many B leaves, few C leaves.
func bigDoc() *tree.Node {
	root := tree.New("A")
	for i := 0; i < 50; i++ {
		root.Add(tree.New("S", tree.NewLeaf("B", "x")))
	}
	root.Add(tree.New("S", tree.NewLeaf("C", "y")))
	return root
}

func TestOptimizeReordersBySelectivity(t *testing.T) {
	doc := bigDoc()
	ix := tree.NewIndex(doc)
	q := MustParseQuery("A(//B $b, //C $c)")
	opt := Optimize(q, ix)
	// C is rarer than B, so the C branch should come first.
	if opt.Root.Children[0].Label != "C" {
		t.Errorf("optimizer did not put rare label first: %s", FormatQuery(opt))
	}
	// The original query must be untouched.
	if q.Root.Children[0].Label != "B" {
		t.Error("Optimize mutated its input")
	}
}

func TestOptimizePreservesAnswers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDocForOpt(r)
		ix := tree.NewIndex(doc)
		queries := []string{
			"*(//B $x, //C $y)",
			"A(//C $x, B $y)",
			"//S $s(B, !C)",
			"*(//B $x, //C $y) where $x = $y",
		}
		q := MustParseQuery(queries[r.Intn(len(queries))])
		opt := Optimize(q, ix)

		a1, err1 := Eval(q, doc, MinimalSubtree)
		a2, err2 := Eval(opt, doc, MinimalSubtree)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(a1) != len(a2) {
			t.Logf("seed %d: answer counts differ %d vs %d", seed, len(a1), len(a2))
			return false
		}
		c1 := canonicals(a1)
		c2 := canonicals(a2)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Logf("seed %d: answers differ", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func canonicals(ts []*tree.Node) []string {
	out := make([]string, len(ts))
	for i, n := range ts {
		out[i] = tree.Canonical(n)
	}
	sort.Strings(out)
	return out
}

func randomDocForOpt(r *rand.Rand) *tree.Node {
	root := tree.New("A")
	labels := []string{"S", "B", "C", "D"}
	values := []string{"x", "y", ""}
	n := 5 + r.Intn(30)
	nodes := []*tree.Node{root}
	for i := 0; i < n; i++ {
		parent := nodes[r.Intn(len(nodes))]
		parent.Value = ""
		child := tree.NewLeaf(labels[r.Intn(len(labels))], values[r.Intn(len(values))])
		parent.Add(child)
		nodes = append(nodes, child)
	}
	return root
}

func TestOptimizeKeepsOrderedQueries(t *testing.T) {
	doc := bigDoc()
	ix := tree.NewIndex(doc)
	q := MustParseQuery("ordered A(//B $b, //C $c)")
	opt := Optimize(q, ix)
	if opt.Root.Children[0].Label != "B" {
		t.Error("ordered query children reordered (changes semantics)")
	}
}

func TestOptimizeForbiddenLast(t *testing.T) {
	doc := bigDoc()
	ix := tree.NewIndex(doc)
	q := MustParseQuery("A(!//C, //B $b)")
	opt := Optimize(q, ix)
	last := opt.Root.Children[len(opt.Root.Children)-1]
	if !last.Forbidden {
		t.Errorf("forbidden filter should sort last: %s", FormatQuery(opt))
	}
}

// TestLabelIndexedDescendantsAgreeWithWalk pins the matcher's candidate
// strategies against each other: rare labels take the label-index path,
// wildcards the subtree walk; both must agree on the match count.
func TestLabelIndexedDescendantsAgreeWithWalk(t *testing.T) {
	doc := bigDoc()
	ix := tree.NewIndex(doc)
	viaLabel, err := CountMatches(MustParseQuery("A(//C $x)"), ix)
	if err != nil {
		t.Fatal(err)
	}
	viaWalk, err := CountMatches(MustParseQuery(`A(//*="y" $x)`), ix)
	if err != nil {
		t.Fatal(err)
	}
	if viaLabel != 1 || viaWalk != 1 {
		t.Errorf("counts: label=%d walk=%d, want 1 and 1", viaLabel, viaWalk)
	}
}
