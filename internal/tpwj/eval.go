package tpwj

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/obs"
	"repro/internal/tree"
	"repro/internal/worlds"
)

// Eval evaluates the query over a plain data tree and returns the set of
// distinct answers (duplicates from different valuations merged), in
// deterministic order (canonical form).
func Eval(q *Query, doc *tree.Node, mode ResultMode) ([]*tree.Node, error) {
	ix := tree.NewIndex(doc)
	seen := make(map[string]*tree.Node)
	err := ForEachMatch(q, ix, func(m Match) bool {
		a := AnswerTree(ix, m, mode)
		c := tree.Canonical(a)
		if _, ok := seen[c]; !ok {
			seen[c] = a
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*tree.Node, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out, nil
}

// EvalWorlds evaluates the query over a possible-worlds set, implementing
// the paper's semantic definition (slide 10): the result is the
// normalization of {(t, p_i) | t ∈ Q(t_i)}. Each entry of the result
// records the probability that the given tree is an answer; the result
// is in general not a distribution.
func EvalWorlds(q *Query, s *worlds.Set, mode ResultMode) (*worlds.Set, error) {
	out := &worlds.Set{}
	for _, w := range s.Worlds {
		answers, err := Eval(q, w.Tree, mode)
		if err != nil {
			return nil, err
		}
		for _, a := range answers {
			out.Add(a, w.P)
		}
	}
	return out.Normalize(), nil
}

// ProbAnswer is one answer of a query over a fuzzy tree: the answer tree,
// the condition under which it appears, and its exact probability.
type ProbAnswer struct {
	// Tree is the answer (a minimal subtree of the underlying document).
	Tree *tree.Node
	// Cond is the disjunction of the condition conjunctions of the
	// valuations producing this answer; the answer appears in exactly
	// the worlds satisfying Cond. For queries with negation, Cond is nil
	// and Formula carries the condition instead.
	Cond event.DNF
	// Formula is the answer condition as a Boolean formula. For positive
	// queries it is equivalent to Cond; for queries with forbidden
	// sub-patterns it carries the ¬(sub-match) parts DNF cannot express.
	Formula event.Formula
	// P is the probability of the answer condition.
	P float64
}

// EvalFuzzy evaluates the query directly on a fuzzy tree (slide 13):
// valuations are found on the underlying data tree, and each answer's
// probability is the probability of the disjunction of the condition
// conjunctions of its valuations, computed exactly. Answers are returned
// in deterministic order (descending probability, then canonical form).
//
// Only MinimalSubtree answers are supported: the answer for a valuation
// must be fully determined by the matched nodes and their ancestors, so
// that its existence is equivalent to a conjunction of conditions.
//
// By the commutation theorem, EvalFuzzy(q, ft) agrees with
// EvalWorlds(q, ft.Expand()) — tested property, experiment E3.
func EvalFuzzy(q *Query, ft *fuzzy.Tree) ([]ProbAnswer, error) {
	return EvalFuzzyContext(context.Background(), q, ft)
}

// EvalFuzzyContext is EvalFuzzy with a context: when the context
// carries an obs trace, the symbolic match, DNF compilation and
// probability evaluation stages record spans into it. On a plain
// context it is EvalFuzzy (the span calls are no-ops).
func EvalFuzzyContext(ctx context.Context, q *Query, ft *fuzzy.Tree) ([]ProbAnswer, error) {
	answers, err := evalFuzzySymbolic(ctx, q, ft)
	if err != nil {
		return nil, err
	}
	_, span := obs.StartSpan(ctx, "event.prob")
	defer span.End()
	// Answers whose condition holds in no world (probability exactly 0,
	// possible with negation or degenerate event probabilities) are not
	// answers: the possible-worlds semantics never produces them.
	out := answers[:0]
	for i := range answers {
		var p float64
		var perr error
		if answers[i].Cond != nil {
			p, perr = ft.Table.ProbDNFCtx(ctx, answers[i].Cond)
		} else {
			p, perr = ft.Table.ProbFormulaCtx(ctx, answers[i].Formula)
		}
		if perr != nil {
			return nil, fmt.Errorf("tpwj: %w", perr)
		}
		if p == 0 {
			continue
		}
		answers[i].P = p
		out = append(out, answers[i])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return tree.Canonical(out[i].Tree) < tree.Canonical(out[j].Tree)
	})
	return out, nil
}

// EvalFuzzyMonteCarlo estimates answer probabilities by sampling: it
// finds the answers symbolically like EvalFuzzy but replaces the exact
// DNF probability computation with Monte-Carlo estimation over the
// events. It is the scalable fallback when condition DNFs grow large
// (experiment E9).
func EvalFuzzyMonteCarlo(q *Query, ft *fuzzy.Tree, samples int, r *rand.Rand) ([]ProbAnswer, error) {
	return EvalFuzzyMonteCarloContext(context.Background(), q, ft, samples, r)
}

// EvalFuzzyMonteCarloContext is EvalFuzzyMonteCarlo with a context,
// traced like EvalFuzzyContext (the probability stage records its span
// under the same "event.prob" name: it is the same pipeline position,
// estimated instead of computed exactly).
func EvalFuzzyMonteCarloContext(ctx context.Context, q *Query, ft *fuzzy.Tree, samples int, r *rand.Rand) ([]ProbAnswer, error) {
	answers, err := evalFuzzySymbolic(ctx, q, ft)
	if err != nil {
		return nil, err
	}
	_, span := obs.StartSpan(ctx, "event.prob")
	defer span.End()
	out := answers[:0]
	for i := range answers {
		var p float64
		var perr error
		if answers[i].Cond != nil {
			p, perr = ft.Table.EstimateDNFCtx(ctx, answers[i].Cond, samples, r)
		} else {
			p, perr = ft.Table.EstimateFormulaCtx(ctx, answers[i].Formula, samples, r)
		}
		if perr != nil {
			return nil, perr
		}
		if p == 0 {
			continue // estimated to appear in no world
		}
		answers[i].P = p
		out = append(out, answers[i])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return tree.Canonical(out[i].Tree) < tree.Canonical(out[j].Tree)
	})
	return out, nil
}

// EvalFuzzySymbolic computes the answers of the query and their
// conditions (DNF for positive queries, general formulas when the
// pattern uses negation) without computing any probability: every
// returned ProbAnswer has P == 0. The symbolic pass is the cheap half
// of EvalFuzzy — the expensive half is the per-answer probability
// computation — which makes it the tool for incremental maintenance of
// materialized views (internal/view): re-derive the answer set, then
// pay for ProbDNF only on answers whose condition actually changed.
// Answers are returned in deterministic order (ascending canonical
// form).
func EvalFuzzySymbolic(q *Query, ft *fuzzy.Tree) ([]ProbAnswer, error) {
	return evalFuzzySymbolic(context.Background(), q, ft)
}

// EvalFuzzySymbolicContext is EvalFuzzySymbolic honoring context
// cancellation (polled every few hundred matches) and recording spans
// when ctx carries an obs trace.
func EvalFuzzySymbolicContext(ctx context.Context, q *Query, ft *fuzzy.Tree) ([]ProbAnswer, error) {
	return evalFuzzySymbolic(ctx, q, ft)
}

// evalFuzzySymbolic computes answers and their conditions (DNF for
// positive queries, general formulas when the pattern uses negation)
// without probabilities. The match enumeration records a "tpwj.match"
// span and the condition-DNF normalization an "event.compile" span
// when ctx carries an obs trace.
func evalFuzzySymbolic(ctx context.Context, q *Query, ft *fuzzy.Tree) ([]ProbAnswer, error) {
	if err := ft.Validate(); err != nil {
		return nil, err
	}
	if q.HasNegation() {
		_, span := obs.StartSpan(ctx, "tpwj.match")
		defer span.End()
		return evalFuzzyNegSymbolic(ctx, q, ft)
	}
	_, mspan := obs.StartSpan(ctx, "tpwj.match")
	doc, toFuzzy := underlyingWithMap(ft)
	ix := tree.NewIndex(doc)
	type acc struct {
		tree *tree.Node
		dnf  event.DNF
	}
	byCanon := make(map[string]*acc)
	stop := newMatchCancel(ctx)
	err := forEachMatch(q, ix, true, obs.CostFromContext(ctx), func(m Match) bool {
		if stop.hit() {
			return false
		}
		var clause event.Condition
		for _, n := range answerNodes(ix, m) {
			clause = append(clause, toFuzzy[n].Cond...)
		}
		clause = clause.Normalize()
		if !clause.Satisfiable() {
			return true
		}
		a := AnswerTree(ix, m, MinimalSubtree)
		c := tree.Canonical(a)
		entry, ok := byCanon[c]
		if !ok {
			entry = &acc{tree: a}
			byCanon[c] = entry
		}
		entry.dnf = append(entry.dnf, clause)
		return true
	})
	mspan.End()
	if err == nil {
		err = stop.err
	}
	if err != nil {
		return nil, err
	}
	_, cspan := obs.StartSpan(ctx, "event.compile")
	defer cspan.End()
	keys := make([]string, 0, len(byCanon))
	for k := range byCanon {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ProbAnswer, 0, len(keys))
	for _, k := range keys {
		e := byCanon[k]
		d := e.dnf.Normalize()
		out = append(out, ProbAnswer{Tree: e.tree, Cond: d, Formula: event.FDNF(d)})
	}
	return out, nil
}

// matchCancel polls a context once every 256 match-callback calls, the
// cooperative cancellation point of the symbolic pass (a single callback
// is cheap; enumerations are long because matches are many). A context
// that can never be cancelled costs one nil check per match.
type matchCancel struct {
	ctx context.Context
	n   int
	err error
}

func newMatchCancel(ctx context.Context) *matchCancel {
	if ctx == nil || ctx.Done() == nil {
		return &matchCancel{}
	}
	return &matchCancel{ctx: ctx}
}

// hit reports whether enumeration must stop; it records the context
// error for the caller to return after the enumerator unwinds.
func (mc *matchCancel) hit() bool {
	if mc.ctx == nil {
		return false
	}
	if mc.n++; mc.n&255 != 0 {
		return false
	}
	if err := mc.ctx.Err(); err != nil {
		mc.err = err
		return true
	}
	return false
}

// evalFuzzyNegSymbolic handles queries with forbidden sub-patterns
// (negation extension): a valuation's condition becomes
//
//	clause(valuation) ∧ ⋀ ¬( ∨ conditions of forbidden sub-matches )
//
// — a general Boolean formula, since a forbidden node may exist in some
// worlds only. Matches are therefore enumerated without the plain-tree
// not-exists filter; the filter is expressed probabilistically instead.
func evalFuzzyNegSymbolic(ctx context.Context, q *Query, ft *fuzzy.Tree) ([]ProbAnswer, error) {
	doc, toFuzzy := underlyingWithMap(ft)
	ix := tree.NewIndex(doc)
	type acc struct {
		tree     *tree.Node
		formulas []event.Formula
	}
	byCanon := make(map[string]*acc)
	stop := newMatchCancel(ctx)
	err := forEachMatch(q, ix, false, obs.CostFromContext(ctx), func(m Match) bool {
		if stop.hit() {
			return false
		}
		var clause event.Condition
		for _, n := range answerNodes(ix, m) {
			clause = append(clause, toFuzzy[n].Cond...)
		}
		clause = clause.Normalize()
		if !clause.Satisfiable() {
			return true
		}
		parts := []event.Formula{event.FCond(clause)}
		for p, n := range m {
			for _, pc := range p.Children {
				if !pc.Forbidden {
					continue
				}
				var sub event.DNF
				ForEachSubMatch(ix, pc, n, func(sm Match) bool {
					var c event.Condition
					seen := make(map[*tree.Node]bool)
					for _, sn := range sm {
						for _, a := range ix.PathToRoot(sn) {
							if seen[a] {
								continue
							}
							seen[a] = true
							c = append(c, toFuzzy[a].Cond...)
						}
					}
					c = c.Normalize()
					if c.Satisfiable() {
						sub = append(sub, c)
					}
					return true
				})
				if len(sub) > 0 {
					parts = append(parts, event.FNot(event.FDNF(sub.Normalize())))
				}
			}
		}
		phi := event.FAnd(parts...)
		if phi == event.FFalse {
			return true
		}
		a := AnswerTree(ix, m, MinimalSubtree)
		c := tree.Canonical(a)
		entry, ok := byCanon[c]
		if !ok {
			entry = &acc{tree: a}
			byCanon[c] = entry
		}
		entry.formulas = append(entry.formulas, phi)
		return true
	})
	if err == nil {
		err = stop.err
	}
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(byCanon))
	for k := range byCanon {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ProbAnswer, 0, len(keys))
	for _, k := range keys {
		e := byCanon[k]
		out = append(out, ProbAnswer{Tree: e.tree, Formula: event.FOr(e.formulas...)})
	}
	return out, nil
}

// underlyingWithMap strips conditions from a fuzzy tree, returning the
// data tree and the mapping from each data node back to its fuzzy node.
func underlyingWithMap(ft *fuzzy.Tree) (*tree.Node, map[*tree.Node]*fuzzy.Node) {
	m := make(map[*tree.Node]*fuzzy.Node)
	var conv func(n *fuzzy.Node) *tree.Node
	conv = func(n *fuzzy.Node) *tree.Node {
		d := &tree.Node{Label: n.Label, Value: n.Value}
		m[d] = n
		for _, c := range n.Children {
			d.Children = append(d.Children, conv(c))
		}
		return d
	}
	return conv(ft.Root), m
}
