// Package tpwj implements the tree-pattern-with-join (TPWJ) queries of
// Abiteboul and Senellart (EDBT 2006), the paper's query language (a
// standard subset of XQuery).
//
// A query is a pattern tree whose nodes carry a label test (possibly the
// wildcard "*"), an optional value-equality test, and an optional
// variable; edges are child or descendant edges; join constraints require
// the values of two variables to be equal. The answer of a query for a
// valuation is the minimal subtree of the document containing all matched
// nodes.
//
// The package evaluates queries over plain data trees, over
// possible-worlds sets (the semantic baseline), and over fuzzy trees (the
// paper's contribution, with exact answer probabilities).
package tpwj

import (
	"errors"
	"fmt"
	"sort"
)

// Wildcard is the label test matching any label.
const Wildcard = "*"

// PNode is a node of a query pattern.
type PNode struct {
	// Label is the element-name test; Wildcard ("*") matches any label.
	Label string
	// Value, when HasValue is set, requires the matched node's textual
	// value to equal Value. Internal document nodes have the empty value.
	Value    string
	HasValue bool
	// Var optionally binds the matched node to a variable name (without
	// the leading '$'), usable in joins and as an update target.
	Var string
	// Desc selects the axis of the edge entering this pattern node:
	// child (false) or descendant (true). On the pattern root, Desc
	// false anchors the match at the document root; Desc true lets the
	// root pattern node match any document node.
	Desc bool
	// Forbidden marks a negated sub-pattern (extension from the paper's
	// perspectives slide): a valuation of the enclosing pattern is valid
	// only if this subtree has NO valuation anchored at the parent's
	// image. Forbidden subtrees bind no variables and may not nest
	// further negation. Written "!" in the textual syntax.
	Forbidden bool
	// Children are the sub-patterns.
	Children []*PNode
}

// NewPNode returns a pattern node with the given label test and children.
func NewPNode(label string, children ...*PNode) *PNode {
	return &PNode{Label: label, Children: children}
}

// WithValue adds a value-equality test and returns the node.
func (p *PNode) WithValue(v string) *PNode {
	p.Value, p.HasValue = v, true
	return p
}

// WithVar binds the node to a variable and returns the node.
func (p *PNode) WithVar(name string) *PNode {
	p.Var = name
	return p
}

// Descendant marks the edge entering this node as a descendant edge and
// returns the node.
func (p *PNode) Descendant() *PNode {
	p.Desc = true
	return p
}

// Forbid marks this node as a negated sub-pattern and returns the node.
func (p *PNode) Forbid() *PNode {
	p.Forbidden = true
	return p
}

// Add appends sub-patterns and returns the node.
func (p *PNode) Add(children ...*PNode) *PNode {
	p.Children = append(p.Children, children...)
	return p
}

// Walk visits the pattern in preorder; fn returning false stops the walk.
func (p *PNode) Walk(fn func(*PNode) bool) {
	if p == nil {
		return
	}
	stack := []*PNode{p}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(cur) {
			return
		}
		for i := len(cur.Children) - 1; i >= 0; i-- {
			stack = append(stack, cur.Children[i])
		}
	}
}

// Clone returns a deep copy of the pattern.
func (p *PNode) Clone() *PNode {
	if p == nil {
		return nil
	}
	c := &PNode{Label: p.Label, Value: p.Value, HasValue: p.HasValue,
		Var: p.Var, Desc: p.Desc, Forbidden: p.Forbidden}
	for _, ch := range p.Children {
		c.Children = append(c.Children, ch.Clone())
	}
	return c
}

// Size returns the number of pattern nodes.
func (p *PNode) Size() int {
	if p == nil {
		return 0
	}
	s := 1
	for _, c := range p.Children {
		s += c.Size()
	}
	return s
}

// Join requires the matched values of two variables to be equal.
type Join struct {
	Left, Right string
}

// Query is a TPWJ query: a pattern with join constraints.
type Query struct {
	Root  *PNode
	Joins []Join
	// Ordered requires sibling pattern nodes to match in strict
	// document order ("some limited order", perspectives slide). The
	// probabilistic core model is unordered; ordered queries are an
	// extension for querying documents whose stored child order is
	// meaningful, and are rejected by update transactions.
	Ordered bool
}

// NewQuery returns a query with the given pattern root and no joins.
func NewQuery(root *PNode) *Query { return &Query{Root: root} }

// AddJoin appends a join constraint and returns the query.
func (q *Query) AddJoin(left, right string) *Query {
	q.Joins = append(q.Joins, Join{Left: left, Right: right})
	return q
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	if q == nil {
		return nil
	}
	return &Query{Root: q.Root.Clone(), Joins: append([]Join{}, q.Joins...), Ordered: q.Ordered}
}

// HasNegation reports whether the pattern contains forbidden subtrees.
func (q *Query) HasNegation() bool {
	found := false
	q.Root.Walk(func(p *PNode) bool {
		if p.Forbidden {
			found = true
			return false
		}
		return true
	})
	return found
}

// Size returns the number of pattern nodes.
func (q *Query) Size() int { return q.Root.Size() }

// Vars returns the pattern nodes bound to variables, keyed by variable
// name.
func (q *Query) Vars() map[string]*PNode {
	vars := make(map[string]*PNode)
	q.Root.Walk(func(p *PNode) bool {
		if p.Var != "" {
			vars[p.Var] = p
		}
		return true
	})
	return vars
}

// Validate checks that the query is well formed: non-empty label tests,
// variables bound at most once, joins referring to bound variables, and
// forbidden subtrees that are variable-free, join-free and not nested.
func (q *Query) Validate() error {
	if q == nil || q.Root == nil {
		return errors.New("tpwj: nil query or pattern root")
	}
	if q.Root.Forbidden {
		return errors.New("tpwj: pattern root cannot be forbidden")
	}
	seen := make(map[string]bool)
	var err error
	var walk func(p *PNode, inForbidden bool) bool
	walk = func(p *PNode, inForbidden bool) bool {
		if p.Label == "" {
			err = errors.New("tpwj: pattern node with empty label test")
			return false
		}
		if inForbidden && p.Forbidden {
			err = errors.New("tpwj: nested negation is not supported")
			return false
		}
		if p.Var != "" {
			if inForbidden || p.Forbidden {
				err = fmt.Errorf("tpwj: variable $%s bound inside a forbidden subtree", p.Var)
				return false
			}
			if seen[p.Var] {
				err = fmt.Errorf("tpwj: variable $%s bound twice", p.Var)
				return false
			}
			seen[p.Var] = true
		}
		for _, c := range p.Children {
			if !walk(c, inForbidden || p.Forbidden) {
				return false
			}
		}
		return true
	}
	walk(q.Root, false)
	if err != nil {
		return err
	}
	for _, j := range q.Joins {
		if !seen[j.Left] {
			return fmt.Errorf("tpwj: join references unbound variable $%s", j.Left)
		}
		if !seen[j.Right] {
			return fmt.Errorf("tpwj: join references unbound variable $%s", j.Right)
		}
	}
	return nil
}

// VarNames returns the sorted variable names bound by the query.
func (q *Query) VarNames() []string {
	vars := q.Vars()
	out := make([]string, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
