package tpwj

import (
	"testing"
)

func TestParseQueryBasic(t *testing.T) {
	q := MustParseQuery("A(B $x, C(//D=val $y)) where $x = $y")
	if q.Root.Label != "A" || len(q.Root.Children) != 2 {
		t.Fatalf("root = %+v", q.Root)
	}
	b := q.Root.Children[0]
	if b.Label != "B" || b.Var != "x" || b.Desc {
		t.Errorf("B node = %+v", b)
	}
	c := q.Root.Children[1]
	if c.Label != "C" || len(c.Children) != 1 {
		t.Fatalf("C node = %+v", c)
	}
	d := c.Children[0]
	if d.Label != "D" || !d.Desc || !d.HasValue || d.Value != "val" || d.Var != "y" {
		t.Errorf("D node = %+v", d)
	}
	if len(q.Joins) != 1 || q.Joins[0] != (Join{"x", "y"}) {
		t.Errorf("joins = %v", q.Joins)
	}
}

func TestParseQueryAxes(t *testing.T) {
	if q := MustParseQuery("//B"); !q.Root.Desc {
		t.Error("//B root should be unanchored")
	}
	if q := MustParseQuery("/A"); q.Root.Desc {
		t.Error("/A root should be anchored")
	}
	if q := MustParseQuery("A"); q.Root.Desc {
		t.Error("bare root should be anchored")
	}
	q := MustParseQuery("A(/B, //C)")
	if q.Root.Children[0].Desc || !q.Root.Children[1].Desc {
		t.Error("child axes wrong")
	}
}

func TestParseQueryWildcard(t *testing.T) {
	q := MustParseQuery("*(//*)")
	if q.Root.Label != Wildcard || q.Root.Children[0].Label != Wildcard {
		t.Errorf("wildcards not parsed: %+v", q.Root)
	}
}

func TestParseQueryQuoted(t *testing.T) {
	q := MustParseQuery(`"my label"(B="va lue")`)
	if q.Root.Label != "my label" {
		t.Errorf("label = %q", q.Root.Label)
	}
	if q.Root.Children[0].Value != "va lue" {
		t.Errorf("value = %q", q.Root.Children[0].Value)
	}
}

func TestParseQueryMultipleJoins(t *testing.T) {
	q := MustParseQuery("A(B $x, C $y, D $z) where $x = $y, $y = $z")
	if len(q.Joins) != 2 {
		t.Errorf("joins = %v", q.Joins)
	}
}

func TestParseQueryErrors(t *testing.T) {
	cases := []string{
		"",
		"A(",
		"A)",
		"A(B",
		"A(B,)",
		"A where",
		"A where $x",
		"A where $x =",
		"A where x = y",
		"A(B $x) where $x = $missing",
		"A(B $x, C $x)", // duplicate variable
		"A trailing",
		"$x",
		"A(B $x) where $x = $x,",
	}
	for _, s := range cases {
		if _, err := ParseQuery(s); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", s)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	inputs := []string{
		"A",
		"//B",
		"A(B $x, C(//D=val $y)) where $x = $y",
		"*(*, //*)",
		`A(B="va lue")`,
		"A(B $x, C $y, D $z) where $x = $y, $y = $z",
		`A(B="")`,
	}
	for _, in := range inputs {
		q := MustParseQuery(in)
		out := FormatQuery(q)
		q2, err := ParseQuery(out)
		if err != nil {
			t.Errorf("re-parse of %q (from %q): %v", out, in, err)
			continue
		}
		if FormatQuery(q2) != out {
			t.Errorf("round trip unstable: %q -> %q -> %q", in, out, FormatQuery(q2))
		}
	}
}

func TestQueryValidate(t *testing.T) {
	if err := (&Query{}).Validate(); err == nil {
		t.Error("nil root accepted")
	}
	var nilQ *Query
	if err := nilQ.Validate(); err == nil {
		t.Error("nil query accepted")
	}
	q := NewQuery(NewPNode(""))
	if err := q.Validate(); err == nil {
		t.Error("empty label accepted")
	}
	q2 := NewQuery(NewPNode("A")).AddJoin("x", "y")
	if err := q2.Validate(); err == nil {
		t.Error("join over unbound vars accepted")
	}
}

func TestQueryCloneIndependence(t *testing.T) {
	q := MustParseQuery("A(B $x) where $x = $x")
	c := q.Clone()
	c.Root.Children[0].Var = "z"
	c.Joins[0].Left = "z"
	if q.Root.Children[0].Var != "x" || q.Joins[0].Left != "x" {
		t.Error("clone shares structure")
	}
}

func TestQueryVarsAndNames(t *testing.T) {
	q := MustParseQuery("A(B $b, C(D $d))")
	vars := q.Vars()
	if len(vars) != 2 || vars["b"].Label != "B" || vars["d"].Label != "D" {
		t.Errorf("Vars = %v", vars)
	}
	names := q.VarNames()
	if len(names) != 2 || names[0] != "b" || names[1] != "d" {
		t.Errorf("VarNames = %v", names)
	}
}

func TestQuerySize(t *testing.T) {
	q := MustParseQuery("A(B, C(D))")
	if q.Size() != 4 {
		t.Errorf("Size = %d", q.Size())
	}
}

func TestFluentBuilders(t *testing.T) {
	q := NewQuery(
		NewPNode("A").Add(
			NewPNode("B").WithVar("x"),
			NewPNode("D").WithValue("val").WithVar("y").Descendant(),
		),
	).AddJoin("x", "y")
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := FormatQuery(q); got != "A(B $x, //D=val $y) where $x = $y" {
		t.Errorf("FormatQuery = %q", got)
	}
}
