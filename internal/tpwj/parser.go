package tpwj

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The textual TPWJ query syntax:
//
//	query := ["ordered"] pattern ["where" join ("," join)*]
//	join  := "$" name "=" "$" name
//	node  := labeltest ["=" value] ["$" name] ["(" edge ("," edge)* ")"]
//	edge  := ["!"] ["/" | "//"] node
//
// A labeltest is a bareword, a quoted Go string, or the wildcard "*"; a
// value is a bareword or quoted string. Child edges may be written with a
// leading "/" or bare; "//" selects the descendant axis. A leading "//"
// on the whole pattern lets it match anywhere in the document instead of
// being anchored at the root.
//
// Extensions from the paper's perspectives slide: a "!" edge prefix
// marks a forbidden (negated) sub-pattern, and the "ordered" keyword
// requires sibling pattern nodes to match in document order.
//
// Example (the slide-6 query shape — an A root with a B child bound to
// $x, and a C child with a D descendant carrying value "val" bound to
// $y, joined on value):
//
//	A(B $x, C(//D="val" $y)) where $x = $y
//
// With negation — A nodes having a B child but no C descendant:
//
//	//A $x(B, !//C)

// ParseQuery parses the textual TPWJ syntax.
func ParseQuery(s string) (*Query, error) {
	p := &queryParser{input: s}
	p.skipSpace()
	ordered := p.eatKeyword("ordered")
	p.skipSpace()
	desc := p.eatAxis()
	root, err := p.parseNode(desc)
	if err != nil {
		return nil, err
	}
	q := NewQuery(root)
	q.Ordered = ordered
	p.skipSpace()
	if p.eatKeyword("where") {
		for {
			p.skipSpace()
			left, err := p.parseVar()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if !p.eatByte('=') {
				return nil, p.errf("expected '=' in join")
			}
			p.skipSpace()
			right, err := p.parseVar()
			if err != nil {
				return nil, err
			}
			q.AddJoin(left, right)
			p.skipSpace()
			if !p.eatByte(',') {
				break
			}
		}
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, p.errf("trailing input")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParseQuery is like ParseQuery but panics on error; for constant
// inputs in tests and examples.
func MustParseQuery(s string) *Query {
	q, err := ParseQuery(s)
	if err != nil {
		panic(err)
	}
	return q
}

// FormatQuery renders a query in the syntax accepted by ParseQuery.
func FormatQuery(q *Query) string {
	var b strings.Builder
	if q.Ordered {
		b.WriteString("ordered ")
	}
	if q.Root.Desc {
		b.WriteString("//")
	}
	writePNode(&b, q.Root)
	if len(q.Joins) > 0 {
		b.WriteString(" where ")
		for i, j := range q.Joins {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "$%s = $%s", j.Left, j.Right)
		}
	}
	return b.String()
}

func writePNode(b *strings.Builder, p *PNode) {
	if p.Label == Wildcard {
		b.WriteByte('*')
	} else {
		b.WriteString(quoteIfNeeded(p.Label))
	}
	if p.HasValue {
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(p.Value))
	}
	if p.Var != "" {
		b.WriteString(" $")
		b.WriteString(p.Var)
	}
	if len(p.Children) > 0 {
		b.WriteByte('(')
		for i, c := range p.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			if c.Forbidden {
				b.WriteByte('!')
			}
			if c.Desc {
				b.WriteString("//")
			}
			writePNode(b, c)
		}
		b.WriteByte(')')
	}
}

func quoteIfNeeded(s string) string {
	if s == "" {
		return strconv.Quote(s)
	}
	for _, r := range s {
		ok := r == '_' || r == '-' || r == '.' ||
			unicode.IsLetter(r) || unicode.IsDigit(r)
		if !ok {
			return strconv.Quote(s)
		}
	}
	return s
}

type queryParser struct {
	input string
	pos   int
}

func (p *queryParser) errf(format string, args ...any) error {
	return fmt.Errorf("tpwj: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *queryParser) skipSpace() {
	for p.pos < len(p.input) {
		switch p.input[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *queryParser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

func (p *queryParser) eatByte(b byte) bool {
	if p.peek() == b {
		p.pos++
		return true
	}
	return false
}

// eatAxis consumes an optional "/" or "//" and reports whether the
// descendant axis was selected.
func (p *queryParser) eatAxis() bool {
	if p.eatByte('/') {
		return p.eatByte('/')
	}
	return false
}

// eatKeyword consumes the keyword if it appears at the cursor followed by
// a non-word character.
func (p *queryParser) eatKeyword(kw string) bool {
	if !strings.HasPrefix(p.input[p.pos:], kw) {
		return false
	}
	rest := p.input[p.pos+len(kw):]
	if rest != "" {
		r := rune(rest[0])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			return false
		}
	}
	p.pos += len(kw)
	return true
}

func (p *queryParser) parseAtom() (string, error) {
	if p.peek() == '"' {
		i := p.pos + 1
		for i < len(p.input) {
			switch p.input[i] {
			case '\\':
				i += 2
				continue
			case '"':
				lit := p.input[p.pos : i+1]
				s, err := strconv.Unquote(lit)
				if err != nil {
					return "", p.errf("bad quoted string %s: %v", lit, err)
				}
				p.pos = i + 1
				return s, nil
			}
			i++
		}
		return "", p.errf("unterminated quoted string")
	}
	start := p.pos
	for p.pos < len(p.input) {
		r := rune(p.input[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected name")
	}
	return p.input[start:p.pos], nil
}

func (p *queryParser) parseVar() (string, error) {
	if !p.eatByte('$') {
		return "", p.errf("expected '$'")
	}
	return p.parseAtom()
}

func (p *queryParser) parseNode(desc bool) (*PNode, error) {
	var label string
	if p.eatByte('*') {
		label = Wildcard
	} else {
		var err error
		label, err = p.parseAtom()
		if err != nil {
			return nil, err
		}
	}
	n := &PNode{Label: label, Desc: desc}
	p.skipSpace()
	if p.peek() == '=' {
		p.pos++
		p.skipSpace()
		v, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		n.Value, n.HasValue = v, true
		p.skipSpace()
	}
	if p.peek() == '$' {
		p.pos++
		v, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		n.Var = v
		p.skipSpace()
	}
	if p.peek() == '(' {
		p.pos++
		for {
			p.skipSpace()
			forbidden := p.eatByte('!')
			if forbidden {
				p.skipSpace()
			}
			childDesc := p.eatAxis()
			c, err := p.parseNode(childDesc)
			if err != nil {
				return nil, err
			}
			c.Forbidden = forbidden
			n.Children = append(n.Children, c)
			p.skipSpace()
			switch p.peek() {
			case ',':
				p.pos++
			case ')':
				p.pos++
				return n, nil
			default:
				return nil, p.errf("expected ',' or ')'")
			}
		}
	}
	return n, nil
}
