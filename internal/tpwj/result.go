package tpwj

import (
	"sort"

	"repro/internal/tree"
)

// ResultMode selects how query answers are materialized.
type ResultMode int

const (
	// MinimalSubtree returns, for each valuation, the minimal subtree of
	// the document containing all matched nodes: the union of the paths
	// from the document root to each matched node. This is the answer
	// definition of the paper and the only mode supported over fuzzy
	// trees.
	MinimalSubtree ResultMode = iota
	// WithSubtrees additionally keeps the full document subtrees below
	// nodes matched by pattern leaves (pattern nodes placing no further
	// structural constraints). Only supported over plain trees and
	// possible-worlds sets.
	WithSubtrees
)

// AnswerTree materializes the answer for one valuation: a fresh tree
// containing exactly the document nodes on the paths from the root to the
// matched nodes (plus, in WithSubtrees mode, everything below matched
// nodes). Kept leaves keep their values.
func AnswerTree(ix *tree.Index, m Match, mode ResultMode) *tree.Node {
	keep := make(map[*tree.Node]bool)
	full := make(map[*tree.Node]bool) // roots of fully copied subtrees
	for p, n := range m {
		for _, a := range ix.PathToRoot(n) {
			keep[a] = true
		}
		if mode == WithSubtrees && len(p.Children) == 0 {
			full[n] = true
		}
	}
	var build func(n *tree.Node) *tree.Node
	build = func(n *tree.Node) *tree.Node {
		if full[n] {
			return n.Clone()
		}
		out := &tree.Node{Label: n.Label, Value: n.Value}
		for _, c := range n.Children {
			if keep[c] {
				out.Children = append(out.Children, build(c))
			}
		}
		return out
	}
	return build(ix.Root())
}

// answerNodes returns the document nodes forming the minimal subtree for
// the valuation: the matched nodes and all their ancestors, in preorder.
func answerNodes(ix *tree.Index, m Match) []*tree.Node {
	set := make(map[*tree.Node]bool)
	for _, n := range m {
		for _, a := range ix.PathToRoot(n) {
			set[a] = true
		}
	}
	out := make([]*tree.Node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return ix.Order(out[i]) < ix.Order(out[j]) })
	return out
}
