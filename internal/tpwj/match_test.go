package tpwj

import (
	"testing"

	"repro/internal/tree"
)

// doc returns a document used across matcher tests:
//
//	A(B:foo, B:foo, E(C:bar), D(F:nee, C:bar))
func doc() *tree.Node {
	return tree.MustParse("A(B:foo, B:foo, E(C:bar), D(F:nee, C:bar))")
}

func countMatches(t *testing.T, query string, docText string) int {
	t.Helper()
	q := MustParseQuery(query)
	d := tree.MustParse(docText)
	n, err := CountMatches(q, tree.NewIndex(d))
	if err != nil {
		t.Fatalf("CountMatches(%q): %v", query, err)
	}
	return n
}

func TestMatchRootAnchored(t *testing.T) {
	if n := countMatches(t, "A", "A(B)"); n != 1 {
		t.Errorf("root match count = %d, want 1", n)
	}
	if n := countMatches(t, "B", "A(B)"); n != 0 {
		t.Errorf("non-root label at root = %d, want 0", n)
	}
}

func TestMatchRootAnywhere(t *testing.T) {
	if n := countMatches(t, "//B", "A(B, C(B))"); n != 2 {
		t.Errorf("anywhere match count = %d, want 2", n)
	}
}

func TestMatchChildEdge(t *testing.T) {
	if n := countMatches(t, "A(B)", "A(B:foo, B:foo, E(C:bar), D(F:nee, C:bar))"); n != 2 {
		t.Errorf("A(B) = %d, want 2 (two B children)", n)
	}
	if n := countMatches(t, "A(C)", "A(B, E(C))"); n != 0 {
		t.Errorf("child edge should not reach grandchild, got %d", n)
	}
}

func TestMatchDescendantEdge(t *testing.T) {
	if n := countMatches(t, "A(//C)", "A(B:foo, B:foo, E(C:bar), D(F:nee, C:bar))"); n != 2 {
		t.Errorf("A(//C) = %d, want 2", n)
	}
	// Descendant axis is strict: the node itself does not match.
	if n := countMatches(t, "A(//A)", "A(B)"); n != 0 {
		t.Errorf("A(//A) = %d, want 0", n)
	}
	if n := countMatches(t, "A(//A)", "A(B(A))"); n != 1 {
		t.Errorf("A(//A) nested = %d, want 1", n)
	}
}

func TestMatchWildcard(t *testing.T) {
	if n := countMatches(t, "A(*)", "A(B, C, D)"); n != 3 {
		t.Errorf("A(*) = %d, want 3", n)
	}
	if n := countMatches(t, "//*", "A(B, C)"); n != 3 {
		t.Errorf("//* = %d, want 3", n)
	}
}

func TestMatchValueTest(t *testing.T) {
	if n := countMatches(t, `A(B="foo")`, "A(B:foo, B:foo, B:other)"); n != 2 {
		t.Errorf("value test = %d, want 2", n)
	}
	// Internal nodes have the empty value.
	if n := countMatches(t, `A(E="")`, "A(E(C))"); n != 1 {
		t.Errorf("empty value on internal node = %d, want 1", n)
	}
}

func TestMatchMultipleChildrenCombinations(t *testing.T) {
	// Two pattern children over two B's and one C: each pattern child
	// picks independently.
	if n := countMatches(t, "A(B, B)", "A(B, B)"); n != 4 {
		t.Errorf("A(B,B) over A(B,B) = %d, want 4 (non-injective valuations)", n)
	}
}

func TestMatchDeepPattern(t *testing.T) {
	if n := countMatches(t, "A(E(C))", "A(B:foo, B:foo, E(C:bar), D(F:nee, C:bar))"); n != 1 {
		t.Errorf("A(E(C)) = %d, want 1", n)
	}
	if n := countMatches(t, "A(D(C, F))", "A(B:foo, B:foo, E(C:bar), D(F:nee, C:bar))"); n != 1 {
		t.Errorf("A(D(C,F)) = %d, want 1", n)
	}
}

func TestMatchJoin(t *testing.T) {
	// C:bar appears under both E and D: join on equal values.
	q := MustParseQuery("A(E(C $x), D(C $y)) where $x = $y")
	n, err := CountMatches(q, tree.NewIndex(doc()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("join matches = %d, want 1", n)
	}

	// Join that never holds.
	q2 := MustParseQuery("A(B $x, E(C $y)) where $x = $y")
	n2, err := CountMatches(q2, tree.NewIndex(doc()))
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Errorf("failing join matches = %d, want 0", n2)
	}
}

func TestMatchJoinPrunesEarly(t *testing.T) {
	// The join between the two B values holds for all four combinations
	// (both have value foo).
	q := MustParseQuery("A(B $x, B $y) where $x = $y")
	n, err := CountMatches(q, tree.NewIndex(tree.MustParse("A(B:foo, B:foo)")))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("matches = %d, want 4", n)
	}
	// Different values: only the diagonal (each with itself).
	n2, err := CountMatches(q, tree.NewIndex(tree.MustParse("A(B:x, B:y)")))
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 2 {
		t.Errorf("matches = %d, want 2", n2)
	}
}

func TestForEachMatchEarlyStop(t *testing.T) {
	q := MustParseQuery("A(B)")
	count := 0
	err := ForEachMatch(q, tree.NewIndex(tree.MustParse("A(B, B, B)")), func(Match) bool {
		count++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("early stop visited %d matches", count)
	}
}

func TestFindMatchesBindings(t *testing.T) {
	q := MustParseQuery("A(E(C $x))")
	ms, err := FindMatches(q, tree.NewIndex(doc()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("matches = %d", len(ms))
	}
	n := ms[0].Binding(q, "x")
	if n == nil || n.Label != "C" || n.Value != "bar" {
		t.Errorf("binding of $x = %v", n)
	}
	if ms[0].Binding(q, "nope") != nil {
		t.Error("unknown variable should bind nil")
	}
}

func TestSelects(t *testing.T) {
	q := MustParseQuery("A(B)")
	if ok, _ := Selects(q, tree.MustParse("A(B)")); !ok {
		t.Error("should select")
	}
	if ok, _ := Selects(q, tree.MustParse("A(C)")); ok {
		t.Error("should not select")
	}
}

func TestMatchInvalidQuery(t *testing.T) {
	q := NewQuery(NewPNode("A", NewPNode("B").WithVar("x"), NewPNode("C").WithVar("x")))
	if err := ForEachMatch(q, tree.NewIndex(doc()), func(Match) bool { return true }); err == nil {
		t.Error("duplicate variable accepted")
	}
}

func TestMatchCloneIndependence(t *testing.T) {
	q := MustParseQuery("A(B $x)")
	var saved []Match
	err := ForEachMatch(q, tree.NewIndex(tree.MustParse("A(B:1, B:2)")), func(m Match) bool {
		saved = append(saved, m.Clone())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) != 2 {
		t.Fatalf("matches = %d", len(saved))
	}
	v1 := saved[0].Binding(q, "x").Value
	v2 := saved[1].Binding(q, "x").Value
	if v1 == v2 {
		t.Error("cloned matches alias the shared map")
	}
}
