package tpwj

// Tests for the two extensions from the paper's perspectives slide:
// negation (forbidden sub-patterns) and limited order.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tree"
)

func TestNegationParseFormat(t *testing.T) {
	q := MustParseQuery("//A $x(B, !//C)")
	if !q.HasNegation() {
		t.Fatal("negation not detected")
	}
	c := q.Root.Children[1]
	if !c.Forbidden || !c.Desc || c.Label != "C" {
		t.Errorf("forbidden child = %+v", c)
	}
	out := FormatQuery(q)
	q2, err := ParseQuery(out)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", out, err)
	}
	if FormatQuery(q2) != out {
		t.Errorf("round trip unstable: %q -> %q", out, FormatQuery(q2))
	}
}

func TestNegationValidation(t *testing.T) {
	cases := []string{
		"!A",          // forbidden root
		"A(!B $x)",    // variable on forbidden node
		"A(!B(C $x))", // variable inside forbidden subtree
		"A(!B(!C))",   // nested negation
	}
	for _, s := range cases {
		if _, err := ParseQuery(s); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", s)
		}
	}
}

func TestNegationPlainMatching(t *testing.T) {
	// A nodes with a B child but no C child.
	q := MustParseQuery("//A $x(B, !C)")
	doc := tree.MustParse("R(A(B), A(B, C), A(C), A(B, D))")
	n, err := CountMatches(q, tree.NewIndex(doc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // first and last A
		t.Errorf("matches = %d, want 2", n)
	}
}

func TestNegationDescendantScope(t *testing.T) {
	// No C anywhere below, not just among children.
	q := MustParseQuery("//A $x(!//C)")
	doc := tree.MustParse("R(A(B(C)), A(B))")
	n, err := CountMatches(q, tree.NewIndex(doc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("matches = %d, want 1", n)
	}
}

func TestNegationWithStructureInside(t *testing.T) {
	// Forbidden subtree with its own structure: no B having both C and D.
	q := MustParseQuery("A $x(!B(C, D))")
	yes := tree.MustParse("A(B(C))")
	no := tree.MustParse("A(B(C, D))")
	if n, _ := CountMatches(q, tree.NewIndex(yes)); n != 1 {
		t.Error("should match when forbidden shape absent")
	}
	if n, _ := CountMatches(q, tree.NewIndex(no)); n != 0 {
		t.Error("should not match when forbidden shape present")
	}
}

func TestNegationFuzzyProbability(t *testing.T) {
	// B exists with P=0.8; answer "A without B" has probability 0.2.
	ft := fuzzy.MustParseTree("A(B[w1])", map[event.ID]float64{"w1": 0.8})
	q := MustParseQuery("A $x(!B)")
	answers, err := EvalFuzzy(q, ft)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("answers = %d", len(answers))
	}
	if math.Abs(answers[0].P-0.2) > 1e-12 {
		t.Errorf("P = %v, want 0.2", answers[0].P)
	}
	if answers[0].Cond != nil {
		t.Error("negated answers should carry a formula, not a DNF")
	}
	if answers[0].Formula == nil {
		t.Error("missing formula")
	}
}

func TestNegationFuzzyMixed(t *testing.T) {
	// Answer requires C present and B absent: P(w2) · P(¬w1) with
	// independent events.
	ft := fuzzy.MustParseTree("A(B[w1], C[w2])",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
	q := MustParseQuery("A $x(C, !B)")
	answers, err := EvalFuzzy(q, ft)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("answers = %d", len(answers))
	}
	want := 0.7 * 0.2
	if math.Abs(answers[0].P-want) > 1e-12 {
		t.Errorf("P = %v, want %v", answers[0].P, want)
	}
}

// TestNegationCommutation extends the commutation theorem to the
// negation extension: evaluating a negated query on the fuzzy tree
// agrees with evaluating it in every possible world.
func TestNegationCommutation(t *testing.T) {
	queries := []*Query{
		MustParseQuery("* $x(!B)"),
		MustParseQuery("* $x(B, !C)"),
		MustParseQuery("* $x(!//C)"),
		MustParseQuery("*(* $x(!*))"),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := randomFuzzyTree(r, 3, 3)
		q := queries[r.Intn(len(queries))]

		direct, err := EvalFuzzy(q, ft)
		if err != nil {
			t.Log(err)
			return false
		}
		pw, err := ft.Expand()
		if err != nil {
			t.Log(err)
			return false
		}
		viaWorlds, err := EvalWorlds(q, pw, MinimalSubtree)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(direct) != viaWorlds.Len() {
			t.Logf("seed %d q=%s: count fuzzy=%d worlds=%d doc=%s",
				seed, FormatQuery(q), len(direct), viaWorlds.Len(), fuzzy.Format(ft.Root))
			return false
		}
		for _, a := range direct {
			if math.Abs(a.P-viaWorlds.ProbOf(a.Tree)) > 1e-9 {
				t.Logf("seed %d q=%s: P(%s) fuzzy=%v worlds=%v",
					seed, FormatQuery(q), tree.Format(a.Tree), a.P, viaWorlds.ProbOf(a.Tree))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestNegationMonteCarlo(t *testing.T) {
	ft := fuzzy.MustParseTree("A(B[w1], C[w2])",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
	q := MustParseQuery("A $x(C, !B)")
	exact, err := EvalFuzzy(q, ft)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := EvalFuzzyMonteCarlo(q, ft, 100000, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != len(approx) {
		t.Fatalf("answer counts differ")
	}
	if math.Abs(exact[0].P-approx[0].P) > 0.01 {
		t.Errorf("exact %v vs estimate %v", exact[0].P, approx[0].P)
	}
}

func TestOrderedParseFormat(t *testing.T) {
	q := MustParseQuery("ordered A(B, C)")
	if !q.Ordered {
		t.Fatal("ordered flag not set")
	}
	out := FormatQuery(q)
	q2, err := ParseQuery(out)
	if err != nil || !q2.Ordered {
		t.Errorf("round trip lost ordering: %q, %v", out, err)
	}
}

func TestOrderedMatching(t *testing.T) {
	// Unordered: both (B,C) and (C,B) sibling orders match.
	doc1 := tree.MustParse("A(B, C)")
	doc2 := tree.MustParse("A(C, B)")
	plain := MustParseQuery("A(B, C)")
	ordered := MustParseQuery("ordered A(B, C)")

	for _, d := range []*tree.Node{doc1, doc2} {
		if n, _ := CountMatches(plain, tree.NewIndex(d)); n != 1 {
			t.Errorf("plain matches on %s = %d", tree.Format(d), n)
		}
	}
	if n, _ := CountMatches(ordered, tree.NewIndex(doc1)); n != 1 {
		t.Error("ordered should match B-before-C document")
	}
	if n, _ := CountMatches(ordered, tree.NewIndex(doc2)); n != 0 {
		t.Error("ordered should not match C-before-B document")
	}
}

func TestOrderedStrict(t *testing.T) {
	// The same node cannot serve two ordered siblings.
	q := MustParseQuery("ordered A(B $x, B $y)")
	doc := tree.MustParse("A(B)")
	if n, _ := CountMatches(q, tree.NewIndex(doc)); n != 0 {
		t.Error("strict order should forbid reusing one node")
	}
	doc2 := tree.MustParse("A(B, B)")
	if n, _ := CountMatches(q, tree.NewIndex(doc2)); n != 1 {
		t.Error("exactly one ordered assignment expected")
	}
}

func TestOrderedWithDescendants(t *testing.T) {
	q := MustParseQuery("ordered A(//X $x, //Y $y)")
	doc := tree.MustParse("A(B(X), C(Y))")
	if n, _ := CountMatches(q, tree.NewIndex(doc)); n != 1 {
		t.Error("ordered descendant match expected")
	}
	docRev := tree.MustParse("A(B(Y), C(X))")
	if n, _ := CountMatches(q, tree.NewIndex(docRev)); n != 0 {
		t.Error("reversed document order should not match")
	}
}

func TestOrderedFuzzyEvaluation(t *testing.T) {
	// Ordered queries work on the fuzzy representation directly (the
	// stored child order of the underlying tree is used).
	ft := fuzzy.MustParseTree("A(B[w1], C[w2])",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
	q := MustParseQuery("ordered A(B $x, C $y)")
	answers, err := EvalFuzzy(q, ft)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || math.Abs(answers[0].P-0.56) > 1e-12 {
		t.Errorf("answers = %v", answers)
	}
	qRev := MustParseQuery("ordered A(C $y, B $x)")
	answersRev, err := EvalFuzzy(qRev, ft)
	if err != nil {
		t.Fatal(err)
	}
	if len(answersRev) != 0 {
		t.Errorf("reversed ordered query matched: %v", answersRev)
	}
}
