package tpwj

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tree"
	"repro/internal/worlds"
)

func TestAnswerTreeMinimal(t *testing.T) {
	d := doc() // A(B:foo, B:foo, E(C:bar), D(F:nee, C:bar))
	q := MustParseQuery("A(E(C $x))")
	answers, err := Eval(q, d, MinimalSubtree)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("answers = %d", len(answers))
	}
	want := tree.MustParse("A(E(C:bar))")
	if !tree.Equal(answers[0], want) {
		t.Errorf("answer = %s, want %s", tree.Format(answers[0]), tree.Format(want))
	}
}

func TestAnswerKeepsMatchedValue(t *testing.T) {
	q := MustParseQuery("A(B)")
	answers, err := Eval(q, tree.MustParse("A(B:foo)"), MinimalSubtree)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || !tree.Equal(answers[0], tree.MustParse("A(B:foo)")) {
		t.Errorf("answers = %v", answers)
	}
}

func TestAnswerDropsUnmatchedSubtrees(t *testing.T) {
	// Matching only E: D's subtree and the B's must not appear.
	q := MustParseQuery("A(E $x)")
	answers, err := Eval(q, doc(), MinimalSubtree)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || !tree.Equal(answers[0], tree.MustParse("A(E)")) {
		t.Errorf("answer = %s", tree.Format(answers[0]))
	}
}

func TestAnswerWithSubtrees(t *testing.T) {
	q := MustParseQuery("A(E $x)")
	answers, err := Eval(q, doc(), WithSubtrees)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || !tree.Equal(answers[0], tree.MustParse("A(E(C:bar))")) {
		t.Errorf("answer = %s", tree.Format(answers[0]))
	}
}

func TestEvalDeduplicatesAnswers(t *testing.T) {
	// Both B's produce the same minimal subtree A(B:foo).
	q := MustParseQuery("A(B)")
	answers, err := Eval(q, tree.MustParse("A(B:foo, B:foo)"), MinimalSubtree)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Errorf("answers = %d, want 1 (deduplicated)", len(answers))
	}
}

func TestEvalMultipleAnswers(t *testing.T) {
	q := MustParseQuery("A(B $x)")
	answers, err := Eval(q, tree.MustParse("A(B:1, B:2)"), MinimalSubtree)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Errorf("answers = %d, want 2", len(answers))
	}
}

func TestEvalWorldsSemantics(t *testing.T) {
	// Two worlds; the query answer A(B) exists only in the first.
	s := &worlds.Set{}
	s.Add(tree.MustParse("A(B)"), 0.6)
	s.Add(tree.MustParse("A(C)"), 0.4)
	q := MustParseQuery("A(B)")
	res, err := EvalWorlds(q, s, MinimalSubtree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("result worlds = %d", res.Len())
	}
	if p := res.ProbOf(tree.MustParse("A(B)")); math.Abs(p-0.6) > worlds.Eps {
		t.Errorf("P(A(B)) = %v, want 0.6", p)
	}
}

func TestEvalWorldsMergesAcrossWorlds(t *testing.T) {
	// The same answer arises in two different worlds; probabilities add.
	s := &worlds.Set{}
	s.Add(tree.MustParse("A(B, C)"), 0.5)
	s.Add(tree.MustParse("A(B, D)"), 0.3)
	s.Add(tree.MustParse("A(E)"), 0.2)
	q := MustParseQuery("A(B)")
	res, err := EvalWorlds(q, s, MinimalSubtree)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.ProbOf(tree.MustParse("A(B)")); math.Abs(p-0.8) > worlds.Eps {
		t.Errorf("P(A(B)) = %v, want 0.8", p)
	}
}

// slide12 builds the fuzzy tree of slide 12.
func slide12() *fuzzy.Tree {
	return fuzzy.MustParseTree("A(B[w1 !w2], C(D[w2]))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
}

func TestEvalFuzzyProbabilities(t *testing.T) {
	ft := slide12()
	q := MustParseQuery("A(B)")
	answers, err := EvalFuzzy(q, ft)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("answers = %d", len(answers))
	}
	// B exists with probability P(w1 ∧ ¬w2) = 0.8·0.3 = 0.24.
	if math.Abs(answers[0].P-0.24) > 1e-12 {
		t.Errorf("P = %v, want 0.24", answers[0].P)
	}
	if !tree.Equal(answers[0].Tree, tree.MustParse("A(B)")) {
		t.Errorf("answer = %s", tree.Format(answers[0].Tree))
	}
}

func TestEvalFuzzyMergesValuationsViaDNF(t *testing.T) {
	// Two conditioned B's yield the same answer tree; probability is
	// P(w1 ∨ w2), not a sum.
	ft := fuzzy.MustParseTree("A(B[w1], B[w2])",
		map[event.ID]float64{"w1": 0.5, "w2": 0.5})
	q := MustParseQuery("A(B)")
	answers, err := EvalFuzzy(q, ft)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("answers = %d", len(answers))
	}
	if math.Abs(answers[0].P-0.75) > 1e-12 {
		t.Errorf("P = %v, want 0.75 = P(w1 ∨ w2)", answers[0].P)
	}
}

func TestEvalFuzzySkipsImpossibleValuations(t *testing.T) {
	// The valuation using both B[w1] and C[!w1] is contradictory.
	ft := fuzzy.MustParseTree("A(B[w1], C[!w1])",
		map[event.ID]float64{"w1": 0.5})
	q := MustParseQuery("A(B, C)")
	answers, err := EvalFuzzy(q, ft)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 0 {
		t.Errorf("answers = %d, want 0", len(answers))
	}
}

func TestEvalFuzzyAncestorConditionsCount(t *testing.T) {
	// D's existence requires C's condition too.
	ft := fuzzy.MustParseTree("A(C[w1](D[w2]))",
		map[event.ID]float64{"w1": 0.5, "w2": 0.5})
	q := MustParseQuery("A(//D)")
	answers, err := EvalFuzzy(q, ft)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("answers = %d", len(answers))
	}
	if math.Abs(answers[0].P-0.25) > 1e-12 {
		t.Errorf("P = %v, want 0.25 = P(w1 ∧ w2)", answers[0].P)
	}
}

// TestQueryCommutationGolden is the commutation theorem (slide 13) on the
// slide-12 document: querying the fuzzy tree directly agrees with
// querying every possible world.
func TestQueryCommutationGolden(t *testing.T) {
	ft := slide12()
	queries := []string{
		"A(B)",
		"A(C(D))",
		"A(//D)",
		"A(B, C(D))",
		"A(*)",
		"//D",
	}
	for _, qs := range queries {
		q := MustParseQuery(qs)
		checkCommutation(t, q, ft, qs)
	}
}

func checkCommutation(t *testing.T, q *Query, ft *fuzzy.Tree, label string) {
	t.Helper()
	direct, err := EvalFuzzy(q, ft)
	if err != nil {
		t.Fatalf("%s: EvalFuzzy: %v", label, err)
	}
	pw, err := ft.Expand()
	if err != nil {
		t.Fatalf("%s: Expand: %v", label, err)
	}
	viaWorlds, err := EvalWorlds(q, pw, MinimalSubtree)
	if err != nil {
		t.Fatalf("%s: EvalWorlds: %v", label, err)
	}
	if len(direct) != viaWorlds.Len() {
		t.Errorf("%s: answer count mismatch: fuzzy=%d worlds=%d", label, len(direct), viaWorlds.Len())
		return
	}
	for _, a := range direct {
		want := viaWorlds.ProbOf(a.Tree)
		if math.Abs(a.P-want) > 1e-9 {
			t.Errorf("%s: P(%s) fuzzy=%v worlds=%v", label, tree.Format(a.Tree), a.P, want)
		}
	}
}

// TestQueryCommutationRandom is the property form of the theorem (E3):
// for random fuzzy trees and a pool of query shapes, EvalFuzzy agrees
// with expand-then-EvalWorlds.
func TestQueryCommutationRandom(t *testing.T) {
	queries := []*Query{
		MustParseQuery("//*"),
		MustParseQuery("//B"),
		MustParseQuery("*(//*)"),
		MustParseQuery("*(*, *)"),
		MustParseQuery("*(B, //C)"),
		MustParseQuery(`//*="v1"`),
		MustParseQuery("*(* $x, * $y) where $x = $y"),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := randomFuzzyTree(r, 3, 3)
		q := queries[r.Intn(len(queries))]

		direct, err := EvalFuzzy(q, ft)
		if err != nil {
			t.Log(err)
			return false
		}
		pw, err := ft.Expand()
		if err != nil {
			t.Log(err)
			return false
		}
		viaWorlds, err := EvalWorlds(q, pw, MinimalSubtree)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(direct) != viaWorlds.Len() {
			t.Logf("seed %d query %s: count fuzzy=%d worlds=%d doc=%s",
				seed, FormatQuery(q), len(direct), viaWorlds.Len(), fuzzy.Format(ft.Root))
			return false
		}
		for _, a := range direct {
			if math.Abs(a.P-viaWorlds.ProbOf(a.Tree)) > 1e-9 {
				t.Logf("seed %d query %s: P(%s) fuzzy=%v worlds=%v",
					seed, FormatQuery(q), tree.Format(a.Tree), a.P, viaWorlds.ProbOf(a.Tree))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// randomFuzzyTree mirrors the fuzzy package's test generator (kept local
// to avoid exporting test helpers).
func randomFuzzyTree(r *rand.Rand, depth, nEvents int) *fuzzy.Tree {
	tab := event.NewTable()
	var ids []event.ID
	for i := 0; i < nEvents; i++ {
		id := event.ID(string(rune('a' + i)))
		tab.MustSet(id, 0.1+0.8*r.Float64())
		ids = append(ids, id)
	}
	randCond := func() event.Condition {
		var c event.Condition
		for _, id := range ids {
			switch r.Intn(4) {
			case 0:
				c = append(c, event.Pos(id))
			case 1:
				c = append(c, event.Neg(id))
			}
		}
		return c.Normalize()
	}
	labels := []string{"A", "B", "C", "D"}
	values := []string{"", "v1", "v2"}
	var build func(d int) *fuzzy.Node
	build = func(d int) *fuzzy.Node {
		n := &fuzzy.Node{Label: labels[r.Intn(len(labels))], Cond: randCond()}
		if d <= 0 || r.Intn(3) == 0 {
			n.Value = values[r.Intn(len(values))]
			return n
		}
		k := r.Intn(3)
		for i := 0; i < k; i++ {
			n.Children = append(n.Children, build(d-1))
		}
		if len(n.Children) == 0 {
			n.Value = values[r.Intn(len(values))]
		}
		return n
	}
	root := build(depth)
	root.Cond = nil
	return &fuzzy.Tree{Root: root, Table: tab}
}

func TestEvalFuzzyMonteCarloAgreesWithExact(t *testing.T) {
	ft := slide12()
	q := MustParseQuery("A(//D)")
	exact, err := EvalFuzzy(q, ft)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := EvalFuzzyMonteCarlo(q, ft, 100000, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != len(approx) {
		t.Fatalf("answer counts differ: %d vs %d", len(exact), len(approx))
	}
	for i := range exact {
		if !tree.Equal(exact[i].Tree, approx[i].Tree) {
			t.Errorf("answer %d trees differ", i)
		}
		if math.Abs(exact[i].P-approx[i].P) > 0.01 {
			t.Errorf("answer %d: exact %v, estimate %v", i, exact[i].P, approx[i].P)
		}
	}
}

func TestEvalFuzzyInvalidTree(t *testing.T) {
	bad := fuzzy.New(fuzzy.MustParse("A(B[zz])"))
	if _, err := EvalFuzzy(MustParseQuery("A"), bad); err == nil {
		t.Error("invalid fuzzy tree accepted")
	}
}

func TestEvalEmptyPatternMismatch(t *testing.T) {
	q := MustParseQuery("Z")
	answers, err := Eval(q, doc(), MinimalSubtree)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 0 {
		t.Errorf("answers = %d, want 0", len(answers))
	}
}
