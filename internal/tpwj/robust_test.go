package tpwj

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness: the parser must never panic, whatever bytes it is fed; it
// either succeeds or returns an error. (Panics would take down the
// warehouse on a malformed query.)
func TestParseQueryNeverPanics(t *testing.T) {
	alphabet := []byte(`AB$xy()*/!"=, ordered where w1`)
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		_, _ = ParseQuery(string(buf))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Valid queries parsed from their own format never change.
func TestFormatParseStableProperty(t *testing.T) {
	pool := []string{
		"A",
		"//B $x",
		"ordered A(B, C)",
		"A(B $x, !//C, D=v $y) where $x = $y",
		"*(*, //*)",
	}
	for _, s := range pool {
		q := MustParseQuery(s)
		out := FormatQuery(q)
		q2, err := ParseQuery(out)
		if err != nil {
			t.Errorf("%q -> %q failed to re-parse: %v", s, out, err)
			continue
		}
		if FormatQuery(q2) != out {
			t.Errorf("format not stable: %q -> %q -> %q", s, out, FormatQuery(q2))
		}
	}
}
