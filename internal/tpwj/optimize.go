package tpwj

import (
	"sort"

	"repro/internal/tree"
)

// Optimize returns a clone of q whose pattern children are reordered so
// that the most selective sub-patterns are matched first ("query
// optimization", perspectives slide of the paper). Selectivity is
// estimated from the document's label statistics: a sub-pattern whose
// root test matches fewer document nodes prunes the search earlier.
// Value tests further sharpen the estimate.
//
// Reordering children does not change the set of valuations (children
// match independently), so answers are identical; only the enumeration
// cost changes. Ordered queries are returned unchanged: their child
// sequence is part of their semantics.
func Optimize(q *Query, ix *tree.Index) *Query {
	out := q.Clone()
	if out.Ordered {
		return out
	}
	var reorder func(p *PNode)
	reorder = func(p *PNode) {
		sort.SliceStable(p.Children, func(i, j int) bool {
			return estimateCost(p.Children[i], ix) < estimateCost(p.Children[j], ix)
		})
		for _, c := range p.Children {
			reorder(c)
		}
	}
	reorder(out.Root)
	return out
}

// estimateCost scores a sub-pattern by the number of document nodes its
// root test can match: fewer candidates first. Wildcards count the whole
// document; value tests halve the estimate (they filter candidates
// cheaply); forbidden sub-patterns sort last (they are filters applied
// after the positive bindings).
func estimateCost(p *PNode, ix *tree.Index) int {
	if p.Forbidden {
		return ix.Len() + 1
	}
	var n int
	if p.Label == Wildcard {
		n = ix.Len()
	} else {
		n = len(ix.ByLabel(p.Label))
	}
	if p.HasValue {
		n /= 2
	}
	return n
}
