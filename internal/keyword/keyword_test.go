package keyword

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/gen"
)

// --- oracle ----------------------------------------------------------------

// oracleProbs computes, for every node (by preorder position), the
// probability that it is a Mode answer, by brute-force possible-worlds
// enumeration: every assignment of the document's events is one world
// (as in fuzzy.Tree.ExpandUnmerged), the world's SLCA/ELCA sets are
// computed by a naive quadratic definition-chasing evaluator sharing no
// code with the engine, and world probabilities accumulate per node.
func oracleProbs(t *testing.T, ft *fuzzy.Tree, keywords []string, mode Mode) map[int]float64 {
	t.Helper()
	tokens, err := RequiredTokens(keywords)
	if err != nil {
		t.Fatal(err)
	}
	// Flatten the tree in preorder, mirroring the index numbering.
	type onode struct {
		parent int
		end    int
		cond   event.Condition
		tokens map[string]bool
	}
	var nodes []onode
	var flatten func(n *fuzzy.Node, parent int) int
	flatten = func(n *fuzzy.Node, parent int) int {
		i := len(nodes)
		toks := make(map[string]bool)
		for _, tk := range Tokenize(n.Label + " " + n.Value) {
			toks[tk] = true
		}
		nodes = append(nodes, onode{parent: parent, cond: n.Cond, tokens: toks})
		end := i + 1
		for _, c := range n.Children {
			end = flatten(c, i)
		}
		nodes[i].end = end
		return end
	}
	flatten(ft.Root, -1)

	probs := make(map[int]float64)
	err = ft.Table.ForEachAssignment(ft.Events(), func(a event.Assignment, p float64) bool {
		exists := make([]bool, len(nodes))
		for i, n := range nodes {
			up := n.parent < 0 || exists[n.parent]
			exists[i] = up && n.cond.Eval(a)
		}
		contains := func(v int, tok string) bool {
			for u := v; u < nodes[v].end; u++ {
				if exists[u] && nodes[u].tokens[tok] {
					return true
				}
			}
			return false
		}
		containsAll := func(v int) bool {
			if !exists[v] {
				return false
			}
			for _, tok := range tokens {
				if !contains(v, tok) {
					return false
				}
			}
			return true
		}
		for v := range nodes {
			if !exists[v] {
				continue
			}
			answer := false
			switch mode {
			case SLCA:
				answer = containsAll(v)
				for d := v + 1; answer && d < nodes[v].end; d++ {
					if containsAll(d) {
						answer = false
					}
				}
			case ELCA:
				answer = true
				for _, tok := range tokens {
					found := false
					for u := v; u < nodes[v].end && !found; u++ {
						if !exists[u] || !nodes[u].tokens[tok] {
							continue
						}
						hidden := false
						for d := u; d != v; d = nodes[d].parent {
							if containsAll(d) {
								hidden = true
								break
							}
						}
						if !hidden {
							found = true
						}
					}
					if !found {
						answer = false
						break
					}
				}
			}
			if answer {
				probs[v] += p
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range probs {
		if p <= 1e-15 {
			delete(probs, v)
		}
	}
	return probs
}

// checkAgainstOracle runs the engine exactly and compares the answer
// set and probabilities with the brute-force oracle.
func checkAgainstOracle(t *testing.T, ft *fuzzy.Tree, keywords []string, mode Mode) {
	t.Helper()
	want := oracleProbs(t, ft, keywords, mode)
	res, err := Search(NewIndex(ft), Request{Keywords: keywords, Mode: mode})
	if err != nil {
		t.Fatalf("%v %v: %v", mode, keywords, err)
	}
	got := make(map[int]float64, len(res.Answers))
	for _, a := range res.Answers {
		got[a.Pre] = a.P
	}
	if len(got) != len(want) {
		t.Fatalf("%v %v on %s:\n got answers %v\n want %v", mode, keywords, fuzzy.Format(ft.Root), got, want)
	}
	for v, p := range want {
		if q, ok := got[v]; !ok || math.Abs(p-q) > 1e-9 {
			t.Errorf("%v %v node %d: got P=%.12g, oracle P=%.12g (doc %s)",
				mode, keywords, v, q, p, fuzzy.Format(ft.Root))
		}
	}
}

// --- worked example --------------------------------------------------------

// exampleDoc is a small library document with conditioned books:
//
//	lib(book[w1](title:kafka, author:max), shelf(book[w2](title:kafka)))
func exampleDoc() *fuzzy.Tree {
	return fuzzy.MustParseTree(
		"lib(book[w1](title:kafka, author:max), shelf(book[w2](title:kafka)))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.5})
}

func TestSLCAExample(t *testing.T) {
	ft := exampleDoc()
	// Keyword "kafka": SLCA answers are the deepest nodes containing
	// it — the two title leaves. P(title1)=P(w1)=0.8, P(title2)=P(w2)=0.5.
	res, err := Search(NewIndex(ft), Request{Keywords: []string{"kafka"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %+v, want 2", res.Answers)
	}
	if a := res.Answers[0]; a.Path != "/lib/book/title" || math.Abs(a.P-0.8) > 1e-12 {
		t.Errorf("first answer = %+v, want /lib/book/title P=0.8", a)
	}
	if a := res.Answers[1]; a.Path != "/lib/shelf/book/title" || math.Abs(a.P-0.5) > 1e-12 {
		t.Errorf("second answer = %+v, want /lib/shelf/book/title P=0.5", a)
	}

	// {kafka, max}: only the first book holds both (P=w1); lib holds
	// both when book1's title provides kafka or book2 does — but max
	// only under book1, so P(lib SLCA) = P(book2 ∧ w... — oracle
	// agreement is the real check here.
	checkAgainstOracle(t, ft, []string{"kafka", "max"}, SLCA)
	checkAgainstOracle(t, ft, []string{"kafka", "max"}, ELCA)
	checkAgainstOracle(t, ft, []string{"kafka"}, SLCA)
	checkAgainstOracle(t, ft, []string{"kafka"}, ELCA)
}

func TestELCAExample(t *testing.T) {
	ft := exampleDoc()
	// Keyword "kafka", ELCA: exactly the nodes carrying the token
	// directly (descendant full-containers exclude their subtrees).
	res, err := Search(NewIndex(ft), Request{Keywords: []string{"kafka"}, Mode: ELCA})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %+v, want the two title leaves", res.Answers)
	}
	for _, a := range res.Answers {
		if a.Label != "title" {
			t.Errorf("ELCA answer %+v, want only title nodes", a)
		}
	}
}

func TestSearchErrors(t *testing.T) {
	ix := NewIndex(exampleDoc())
	if _, err := Search(ix, Request{Keywords: []string{"!!"}}); err == nil {
		t.Error("no error for keywords without tokens")
	}
	if _, err := Search(ix, Request{Keywords: nil}); err == nil {
		t.Error("no error for empty keywords")
	}
	if _, err := Search(ix, Request{Keywords: []string{"kafka"}, MinProb: 1.5}); err == nil {
		t.Error("no error for MinProb > 1")
	}
	if _, err := ParseMode("fancy"); err == nil {
		t.Error("no error for unknown mode")
	}
}

func TestSearchNoMatches(t *testing.T) {
	ix := NewIndex(exampleDoc())
	res, err := Search(ix, Request{Keywords: []string{"tolstoy"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 || res.Candidates != 0 {
		t.Errorf("result = %+v, want empty", res)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("The Castle, by Franz-Kafka (1926)")
	want := []string{"the", "castle", "by", "franz", "kafka", "1926"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if toks := Tokenize("  ,;  "); len(toks) != 0 {
		t.Errorf("Tokenize(separators) = %v, want none", toks)
	}
}

// --- randomized differential -----------------------------------------------

// randomDoc draws a random fuzzy document whose labels and values reuse
// a small alphabet (so keywords repeat across subtrees) and whose event
// count stays brute-forceable.
func randomDoc(r *rand.Rand) *fuzzy.Tree {
	return gen.Fuzzy(r, gen.FuzzyConfig{
		Tree: gen.TreeConfig{
			Depth:     2 + r.Intn(3),
			MaxFanout: 1 + r.Intn(3),
			Labels:    []string{"a", "b", "c"},
			Values:    []string{"", "x", "y", "xy"},
		},
		Events:   1 + r.Intn(6),
		CondProb: 0.6,
		MaxLits:  2,
	})
}

func TestDifferentialOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	keywordSets := [][]string{{"a"}, {"x"}, {"a", "x"}, {"b", "c"}, {"a", "b", "x"}, {"x", "y"}}
	for i := 0; i < 60; i++ {
		ft := randomDoc(r)
		if len(ft.Events()) > 12 || ft.Size() > 40 {
			continue
		}
		kws := keywordSets[r.Intn(len(keywordSets))]
		checkAgainstOracle(t, ft, kws, SLCA)
		checkAgainstOracle(t, ft, kws, ELCA)
	}
}

// TestThresholdInvariance checks the acceptance property of MinProb and
// TopK: they must never change the surviving answer set relative to
// post-filtering the unpruned, uncut results.
func TestThresholdInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 40; i++ {
		ft := randomDoc(r)
		ix := NewIndex(ft)
		kws := []string{"a", "x"}
		for _, mode := range []Mode{SLCA, ELCA} {
			base, err := Search(ix, Request{Keywords: kws, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			minProb := r.Float64()
			topK := 1 + r.Intn(3)
			got, err := Search(ix, Request{Keywords: kws, Mode: mode, MinProb: minProb, TopK: topK})
			if err != nil {
				t.Fatal(err)
			}
			var want []Answer
			for _, a := range base.Answers {
				if a.P >= minProb {
					want = append(want, a)
				}
			}
			if len(want) > topK {
				want = want[:topK]
			}
			if len(got.Answers) != len(want) {
				t.Fatalf("mode %v minProb=%v topK=%d: got %+v, want %+v",
					mode, minProb, topK, got.Answers, want)
			}
			for j := range want {
				if got.Answers[j].Pre != want[j].Pre || math.Abs(got.Answers[j].P-want[j].P) > 1e-12 {
					t.Errorf("mode %v minProb=%v topK=%d answer %d: got %+v, want %+v",
						mode, minProb, topK, j, got.Answers[j], want[j])
				}
			}
		}
	}
}

// TestMonteCarloAgreement checks that MC estimates converge to the
// exact probabilities, and that MC results honor MinProb/TopK the same
// way (estimates are clamped to the exact upper bound, so pruning stays
// invariant).
func TestMonteCarloAgreement(t *testing.T) {
	ft := exampleDoc()
	ix := NewIndex(ft)
	for _, mode := range []Mode{SLCA, ELCA} {
		exact, err := Search(ix, Request{Keywords: []string{"kafka"}, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		mc, err := Search(ix, Request{Keywords: []string{"kafka"}, Mode: mode, MC: true, Samples: 20000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if len(mc.Answers) != len(exact.Answers) {
			t.Fatalf("mode %v: MC answers %+v, exact %+v", mode, mc.Answers, exact.Answers)
		}
		em := make(map[int]float64)
		for _, a := range exact.Answers {
			em[a.Pre] = a.P
		}
		for _, a := range mc.Answers {
			if math.Abs(a.P-em[a.Pre]) > 0.02 {
				t.Errorf("mode %v node %d: MC P=%v, exact P=%v", mode, a.Pre, a.P, em[a.Pre])
			}
		}
	}
}

func TestMonteCarloThresholdInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		ft := randomDoc(r)
		ix := NewIndex(ft)
		req := Request{Keywords: []string{"a", "x"}, Mode: SLCA, MC: true, Samples: 500, Seed: int64(i + 1)}
		base, err := Search(ix, req)
		if err != nil {
			t.Fatal(err)
		}
		minProb := 0.3
		cut := req
		cut.MinProb = minProb
		got, err := Search(ix, cut)
		if err != nil {
			t.Fatal(err)
		}
		// The pruned run's estimates may be clamped by the bound; the
		// surviving set must equal post-filtering the clamped base run.
		// Since clamping only lowers estimates below a bound that the
		// pruned run would also apply, compare sets by membership.
		want := make(map[int]bool)
		for _, a := range base.Answers {
			bounded := a.P
			if bounded >= minProb {
				want[a.Pre] = true
			}
		}
		for _, a := range got.Answers {
			if !want[a.Pre] {
				t.Errorf("pruned run has unexpected answer %+v", a)
			}
			delete(want, a.Pre)
		}
		for pre := range want {
			t.Errorf("pruned run lost answer at node %d", pre)
		}
	}
}

func TestIndexStructure(t *testing.T) {
	ft := exampleDoc()
	ix := NewIndex(ft)
	if ix.Tree() != ft {
		t.Error("index does not identify its snapshot")
	}
	if ix.Len() != 7 {
		t.Errorf("Len = %d, want 7", ix.Len())
	}
	toks := ix.Tokens()
	want := []string{"author", "book", "kafka", "lib", "max", "shelf", "title"}
	if strings.Join(toks, " ") != strings.Join(want, " ") {
		t.Errorf("Tokens = %v, want %v", toks, want)
	}
	if ix.Postings() == 0 {
		t.Error("no postings")
	}
}

// TestUnsatisfiableWitness checks that nodes with contradictory path
// conditions (existing in no world) are neither witnesses nor answers.
func TestUnsatisfiableWitness(t *testing.T) {
	ft := fuzzy.MustParseTree("r(a[w1](b[!w1]:x), c:x)", map[event.ID]float64{"w1": 0.5})
	checkAgainstOracle(t, ft, []string{"x"}, SLCA)
	checkAgainstOracle(t, ft, []string{"x"}, ELCA)
	res, err := Search(NewIndex(ft), Request{Keywords: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Answers {
		if a.Label == "b" {
			t.Errorf("unsatisfiable node reported as answer: %+v", a)
		}
	}
}
