package keyword

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
)

// decodeFuzzDoc deterministically decodes a byte stream into a small
// fuzzy document (≤ 12 nodes, ≤ 6 events with probabilities from the
// stream including the 0 and 1 edge cases), a keyword set drawn from
// the document's token alphabet, and a mode. Bytes past the end of the
// stream read as zero, so every input decodes.
func decodeFuzzDoc(data []byte) (*fuzzy.Tree, []string, Mode) {
	cur := 0
	next := func() byte {
		if cur < len(data) {
			b := data[cur]
			cur++
			return b
		}
		cur++
		return 0
	}
	nEvents := 1 + int(next())%6
	tab := event.NewTable()
	ids := make([]event.ID, nEvents)
	for i := range ids {
		ids[i] = event.ID(fmt.Sprintf("w%d", i))
		tab.MustSet(ids[i], float64(next())/255)
	}
	labels := []string{"a", "b", "c"}
	values := []string{"", "x", "y"}
	root := &fuzzy.Node{Label: "r"}
	nodes := []*fuzzy.Node{root}
	nNodes := 1 + int(next())%11
	for i := 0; i < nNodes; i++ {
		parent := nodes[int(next())%len(nodes)]
		parent.Value = "" // internal nodes must not carry values
		n := &fuzzy.Node{
			Label: labels[int(next())%len(labels)],
			Value: values[int(next())%len(values)],
		}
		nLits := int(next()) % 3
		var c event.Condition
		for j := 0; j < nLits; j++ {
			b := next()
			c = append(c, event.Literal{Event: ids[int(b&0x7f)%nEvents], Neg: b&0x80 != 0})
		}
		n.Cond = c.Normalize()
		parent.Children = append(parent.Children, n)
		nodes = append(nodes, n)
	}
	kwSets := [][]string{{"a"}, {"x"}, {"a", "x"}, {"b", "y"}, {"a", "b", "x"}}
	kws := kwSets[int(next())%len(kwSets)]
	mode := SLCA
	if next()%2 == 1 {
		mode = ELCA
	}
	return &fuzzy.Tree{Root: root, Table: tab}, kws, mode
}

// FuzzKeywordDifferential checks the SLCA/ELCA engine against the
// brute-force possible-worlds oracle on random small documents. In
// normal `go test` runs (and CI) the checked-in seed corpus under
// testdata/fuzz plus the f.Add seeds below execute as regular test
// cases; `go test -fuzz=FuzzKeywordDifferential` explores further.
func FuzzKeywordDifferential(f *testing.F) {
	// Adversarial shapes: the minimal all-zero stream, contradictory
	// conditions, a deep chain (SLCA/ELCA exclusion cascades), a node
	// carrying several keywords at once, degenerate probabilities 0
	// and 1, and both modes.
	f.Add([]byte{})
	f.Add([]byte{0, 255, 3, 0, 0, 1, 1, 0x00, 0x80, 1, 1, 2, 0, 2, 1})
	f.Add([]byte{2, 0, 255, 128, 5, 0, 0, 1, 1, 1, 1, 1, 2, 2, 1, 3, 0, 2, 4, 1, 2, 1})
	f.Add([]byte{1, 128, 4, 0, 0, 0, 0, 1, 1, 0, 1, 2, 1, 2, 1, 2, 0})
	f.Add([]byte{3, 64, 192, 32, 6, 0, 2, 1, 1, 0, 2, 0, 1, 1, 2, 2, 1, 3, 1, 2, 2, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, kws, mode := decodeFuzzDoc(data)
		if err := ft.Validate(); err != nil {
			t.Fatalf("generated invalid document: %v", err)
		}
		want := oracleProbs(t, ft, kws, mode)
		res, err := Search(NewIndex(ft), Request{Keywords: kws, Mode: mode})
		if err != nil {
			t.Fatalf("Search(%v, %v): %v", kws, mode, err)
		}
		got := make(map[int]float64, len(res.Answers))
		for _, a := range res.Answers {
			got[a.Pre] = a.P
		}
		if len(got) != len(want) {
			t.Fatalf("%v %v on %s:\n got %v\n want %v", mode, kws, fuzzy.Format(ft.Root), got, want)
		}
		for v, p := range want {
			if q, ok := got[v]; !ok || math.Abs(p-q) > 1e-9 {
				t.Errorf("%v %v node %d: engine P=%.17g, oracle P=%.17g (doc %s)",
					mode, kws, v, q, p, fuzzy.Format(ft.Root))
			}
		}
	})
}
