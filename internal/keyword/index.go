// Package keyword implements keyword search over probabilistic XML
// documents: ELCA and SLCA answer semantics (Zhou et al., "ELCA
// Evaluation for Keyword Search on Probabilistic XML Data"; Li et al.,
// "Quasi-SLCA based Keyword Query Processing over Probabilistic XML
// Data") adapted to the fuzzy-tree model.
//
// A search takes a bag of keywords and returns document nodes together
// with the exact probability that the node is an SLCA (smallest lowest
// common ancestor) or ELCA (exclusive lowest common ancestor) answer in
// a random possible world of the document. The evaluator runs on an
// inverted Index (token → postings in document order), merges the
// postings with a stack to find candidate nodes, and computes each
// candidate's probability from the witness path conditions via the
// internal/event machinery — as a DNF of match-witness conjunctions for
// containment, sharpened to SLCA/ELCA semantics with negation (a
// Boolean formula, like TPWJ queries with forbidden sub-patterns).
// Probability-threshold search (MinProb) prunes candidates early with a
// monotone upper bound; see docs/SEARCH.md for the semantics and why
// the bound is safe.
package keyword

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/obs"
)

// package counters (lock-free: indexes are built and searched
// concurrently by server requests), served by pxserve under /stats as
// "search" and under /metrics as px_keyword_* counters — both read the
// same obs registry handles.
var (
	ctrIndexBuilds     = obs.Default().Counter("px_keyword_index_builds_total", "inverted keyword indexes built")
	ctrPostings        = obs.Default().Counter("px_keyword_postings_total", "inverted-index postings built")
	ctrSearches        = obs.Default().Counter("px_keyword_searches_total", "keyword searches evaluated")
	ctrPostingsScanned = obs.Default().Counter("px_keyword_postings_scanned_total", "postings consulted by search candidate enumeration")
	ctrThresholdPrunes = obs.Default().Counter("px_keyword_threshold_prunes_total", "candidates pruned by the MinProb upper bound")
)

// Counters is a snapshot of the package counters: how many inverted
// indexes were built, the total postings they held, how many searches
// ran, and how many candidates the MinProb upper bound pruned before
// their exact probability was computed.
type Counters struct {
	IndexBuilds     int64 `json:"index_builds"`
	Postings        int64 `json:"postings"`
	Searches        int64 `json:"searches"`
	PostingsScanned int64 `json:"postings_scanned"`
	ThresholdPrunes int64 `json:"threshold_prunes"`
}

// ReadCounters returns the current counter values.
func ReadCounters() Counters {
	return Counters{
		IndexBuilds:     ctrIndexBuilds.Value(),
		Postings:        ctrPostings.Value(),
		Searches:        ctrSearches.Value(),
		PostingsScanned: ctrPostingsScanned.Value(),
		ThresholdPrunes: ctrThresholdPrunes.Value(),
	}
}

// ResetCounters zeroes the package counters (tests, benchmarks).
func ResetCounters() {
	ctrIndexBuilds.Reset()
	ctrPostings.Reset()
	ctrSearches.Reset()
	ctrPostingsScanned.Reset()
	ctrThresholdPrunes.Reset()
}

// nodeInfo is one document node in the index, identified by its
// preorder position.
type nodeInfo struct {
	pre    int32 // preorder position (== index in Index.nodes)
	end    int32 // end of the subtree interval: [pre, end) covers the subtree
	parent int32 // parent preorder position, -1 for the root
	label  string
	value  string
	// path is the node's effective path condition: the normalized
	// conjunction of its own condition and all its ancestors'. A node
	// exists in a world iff its path condition holds.
	path event.Condition
	// sat is false when path contains a contradictory literal pair: the
	// node exists in no world, so it is never a witness or an answer.
	sat bool
}

// Index is a per-document inverted index for keyword search: every
// token of every node label and value maps to the posting list of nodes
// carrying it, in document (preorder) order, each posting carrying the
// node's path condition. The index belongs to one immutable snapshot of
// one document; it is safe for concurrent searches and must be rebuilt
// when the document changes (Tree identifies the snapshot it was built
// from, so a cache can detect staleness by pointer comparison).
type Index struct {
	tree     *fuzzy.Tree
	nodes    []nodeInfo
	postings map[string][]int32 // token → preorder positions, ascending
}

// NewIndex builds the inverted index of one document snapshot.
func NewIndex(ft *fuzzy.Tree) *Index {
	ix := &Index{tree: ft, postings: make(map[string][]int32)}
	var walk func(n *fuzzy.Node, parent int32, acc event.Condition) int32
	walk = func(n *fuzzy.Node, parent int32, acc event.Condition) int32 {
		pre := int32(len(ix.nodes))
		path := acc.And(n.Cond)
		ix.nodes = append(ix.nodes, nodeInfo{
			pre:    pre,
			parent: parent,
			label:  n.Label,
			value:  n.Value,
			path:   path,
			sat:    path.Satisfiable(),
		})
		for _, tok := range Tokenize(n.Label + " " + n.Value) {
			// A label and value sharing a token still yield one posting:
			// postings are per (token, node).
			if l := ix.postings[tok]; len(l) == 0 || l[len(l)-1] != pre {
				ix.postings[tok] = append(ix.postings[tok], pre)
				ctrPostings.Add(1)
			}
		}
		end := pre + 1
		for _, c := range n.Children {
			end = walk(c, pre, path)
		}
		ix.nodes[pre].end = end
		return end
	}
	walk(ft.Root, -1, nil)
	ctrIndexBuilds.Add(1)
	return ix
}

// Tree returns the document snapshot the index was built from. Caches
// compare it by pointer against the current snapshot to detect
// staleness (snapshots are immutable; mutations install fresh trees).
func (ix *Index) Tree() *fuzzy.Tree { return ix.tree }

// Len returns the number of indexed nodes.
func (ix *Index) Len() int { return len(ix.nodes) }

// Postings returns the total number of (token, node) postings.
func (ix *Index) Postings() int {
	n := 0
	for _, l := range ix.postings {
		n += len(l)
	}
	return n
}

// Tokens returns the sorted distinct tokens of the index.
func (ix *Index) Tokens() []string {
	out := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Tokenize splits text into lowercase alphanumeric tokens: maximal runs
// of letters and digits, everything else a separator. Both index terms
// and query keywords go through it, so "Kafka," matches "kafka".
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			flush()
		}
	}
	flush()
	return out
}

// witnesses returns the postings of token within the subtree interval
// of node v: the candidate's match witnesses for that keyword.
// Unsatisfiable nodes (existing in no world) are excluded.
func (ix *Index) witnesses(tok string, v int32) []int32 {
	list := ix.postings[tok]
	n := ix.nodes[v]
	lo := sort.Search(len(list), func(i int) bool { return list[i] >= n.pre })
	hi := sort.Search(len(list), func(i int) bool { return list[i] >= n.end })
	if lo == hi {
		return nil
	}
	out := make([]int32, 0, hi-lo)
	for _, u := range list[lo:hi] {
		if ix.nodes[u].sat {
			out = append(out, u)
		}
	}
	return out
}

// hasToken reports whether node v itself carries the token.
func (ix *Index) hasToken(tok string, v int32) bool {
	list := ix.postings[tok]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	return i < len(list) && list[i] == v
}

// childToward returns the child of v whose subtree contains u (v must
// be a proper ancestor of u).
func (ix *Index) childToward(v, u int32) int32 {
	for c := u; ; c = ix.nodes[c].parent {
		if ix.nodes[c].parent == v {
			return c
		}
	}
}

// Path renders the node's location as a rooted label path with 1-based
// positional predicates among same-label siblings, e.g. /A/S[2]/L.
// The predicate is omitted when the node is the only child with its
// label.
func (ix *Index) Path(pre int32) string {
	var steps []string
	for v := pre; v >= 0; v = ix.nodes[v].parent {
		steps = append(steps, ix.step(v))
	}
	var b strings.Builder
	for i := len(steps) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(steps[i])
	}
	return b.String()
}

// step renders one path step of node v, counting same-label siblings by
// walking the parent's child intervals.
func (ix *Index) step(v int32) string {
	n := ix.nodes[v]
	if n.parent < 0 {
		return n.label
	}
	p := ix.nodes[n.parent]
	idx, total := 0, 0
	for c := n.parent + 1; c < p.end; c = ix.nodes[c].end {
		if ix.nodes[c].label == n.label {
			total++
			if c <= v {
				idx++
			}
		}
	}
	if total <= 1 {
		return n.label
	}
	return n.label + "[" + strconv.Itoa(idx) + "]"
}
