package keyword

import (
	"fmt"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
)

// benchDoc builds a sections document shaped like exp.SectionDoc but
// with keyword-bearing leaves: m sections, each conditioned on its own
// event, holding title and body leaves that share tokens across
// sections (so searches produce many candidates with overlapping
// witness sets).
func benchDoc(m int) *fuzzy.Tree {
	root := fuzzy.NewNode("doc")
	tab := event.NewTable()
	words := []string{"kafka", "castle", "trial", "amerika"}
	for i := 1; i <= m; i++ {
		id := event.ID(fmt.Sprintf("e%d", i))
		tab.MustSet(id, 0.3+0.5*float64(i%7)/7)
		root.Add(fuzzy.NewNode("section",
			fuzzy.NewLeaf("title", words[i%len(words)]),
			fuzzy.NewLeaf("body", words[(i+1)%len(words)]+" text"),
		).WithCond(event.Cond(event.Pos(id))))
	}
	return &fuzzy.Tree{Root: root, Table: tab}
}

// BenchmarkKeywordSearch measures one SLCA search over a 24-section
// document: cold (index built per search, the first-search cost), warm
// (index reused, the steady state of the warehouse cache), and
// threshold-pruned (warm with a MinProb that lets the upper bound skip
// most candidates' exact formulas).
func BenchmarkKeywordSearch(b *testing.B) {
	ft := benchDoc(24)
	req := Request{Keywords: []string{"kafka", "castle"}}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Search(NewIndex(ft), req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		ix := NewIndex(ft)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Search(ix, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pruned", func(b *testing.B) {
		ix := NewIndex(ft)
		pruned := req
		pruned.MinProb = 0.5
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Search(ix, pruned); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mc", func(b *testing.B) {
		ix := NewIndex(ft)
		mc := req
		mc.MC, mc.Samples, mc.Seed = true, 1000, 1
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Search(ix, mc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkIndexBuild(b *testing.B) {
	ft := benchDoc(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewIndex(ft)
	}
}

func BenchmarkKeywordSearchELCA(b *testing.B) {
	ft := benchDoc(24)
	ix := NewIndex(ft)
	req := Request{Keywords: []string{"kafka", "castle"}, Mode: ELCA}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Search(ix, req); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWarmFasterThanCold pins the acceptance property behind the
// benchmark: reusing the index must beat rebuilding it per search. To
// keep the timing comparison robust, the search itself is chosen
// trivial (the root label, one posting, one candidate), so the cold
// run's extra cost is exactly one index build over a 96-section
// document.
func TestWarmFasterThanCold(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short mode")
	}
	ft := benchDoc(96)
	req := Request{Keywords: []string{"doc"}}
	ix := NewIndex(ft)
	timeIt := func(f func()) int64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		return r.NsPerOp()
	}
	cold := timeIt(func() { Search(NewIndex(ft), req) }) //nolint:errcheck
	warm := timeIt(func() { Search(ix, req) })           //nolint:errcheck
	if warm >= cold {
		t.Errorf("warm search (%d ns/op) not faster than cold (%d ns/op)", warm, cold)
	}
}
