package keyword

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/event"
	"repro/internal/obs"
)

// Mode selects the keyword answer semantics.
type Mode int

const (
	// SLCA answers are smallest lowest common ancestors: in a given
	// world, a node whose subtree contains every keyword while no
	// child's subtree does.
	SLCA Mode = iota
	// ELCA answers are exclusive lowest common ancestors: in a given
	// world, a node whose subtree still contains every keyword after
	// excluding the subtrees of descendants that contain every keyword
	// themselves.
	ELCA
)

// ParseMode parses "slca" or "elca" (the empty string defaults to SLCA).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "slca":
		return SLCA, nil
	case "elca":
		return ELCA, nil
	default:
		return 0, fmt.Errorf("keyword: unknown mode %q (want slca or elca)", s)
	}
}

// String renders the mode ("slca" or "elca").
func (m Mode) String() string {
	if m == ELCA {
		return "elca"
	}
	return "slca"
}

// MaxTokens bounds the number of distinct required tokens of one search
// (keyword-presence sets are tracked as uint64 bitmasks).
const MaxTokens = 64

// Request describes one keyword search.
type Request struct {
	// Keywords are the required terms. Each is tokenized like document
	// text; all resulting tokens are required (deduplicated).
	Keywords []string
	// Mode selects SLCA or ELCA semantics.
	Mode Mode
	// MC switches probability computation from exact (Boolean formulas
	// over the witness conditions) to Monte-Carlo estimation by world
	// sampling — the scalable fallback when documents carry many
	// events.
	MC bool
	// Samples is the Monte-Carlo world count (MC only); defaults to
	// 1000.
	Samples int
	// Seed makes Monte-Carlo estimation reproducible (MC only);
	// defaults to 1.
	Seed int64
	// MinProb drops answers with probability below it. Candidates whose
	// monotone upper bound already falls below MinProb are pruned
	// before their exact probability is computed.
	MinProb float64
	// TopK, when positive, keeps only the K most probable answers
	// (ties broken by document order, so the cut is deterministic).
	TopK int
}

// Answer is one keyword-search answer: a document node and the
// probability that it is an SLCA/ELCA answer in a random world.
type Answer struct {
	// Pre is the node's preorder position in the document, its stable
	// identity for one document state.
	Pre int
	// Path locates the node, e.g. /A/S[2]/L.
	Path string
	// Label and Value are the node's own content.
	Label string
	Value string
	// P is the probability that the node is an answer. Exact searches
	// compute it by Shannon expansion over the witness conditions;
	// MC searches estimate it from sampled worlds (clamped to the
	// node's exact upper bound when MinProb forced bounds to be
	// computed).
	P float64
	// Witnesses is the number of keyword witness postings in the
	// node's subtree.
	Witnesses int
}

// Result is the outcome of one search.
type Result struct {
	Answers []Answer
	// Candidates is the number of nodes whose subtree contains every
	// keyword somewhere in the document (the evaluator's working set).
	Candidates int
	// Pruned is the number of candidates the MinProb upper bound
	// eliminated without computing an exact probability.
	Pruned int
}

// tolerance absorbs floating-point disagreement between a candidate's
// upper bound and its exact probability, so bound-based pruning can
// never drop an answer the MinProb filter would keep.
const tolerance = 1e-9

// Search runs one keyword search against the index. It is safe for
// concurrent use (the index is immutable).
func Search(ix *Index, req Request) (*Result, error) {
	return SearchContext(context.Background(), ix, req)
}

// SearchContext is Search honoring context cancellation: the candidate
// bound/probability loops check ctx between candidates (and the
// per-candidate Shannon expansions check it internally), and Monte-Carlo
// world sampling checks it between samples. On cancellation the partial
// result is discarded and the context's error returned. A context that
// can never be cancelled costs nothing over Search.
func SearchContext(ctx context.Context, ix *Index, req Request) (*Result, error) {
	// The cost accumulator must be read off the original context: poll is
	// nilled for uncancellable contexts, but the full ctx (cost and all)
	// still flows to the probability-engine calls below.
	cost := obs.CostFromContext(ctx)
	poll := ctx
	if poll != nil && poll.Done() == nil {
		poll = nil
	}
	tokens, err := RequiredTokens(req.Keywords)
	if err != nil {
		return nil, err
	}
	if req.MinProb < 0 || req.MinProb > 1 {
		return nil, fmt.Errorf("keyword: min probability %v outside [0,1]", req.MinProb)
	}
	ctrSearches.Add(1)
	var scanned int64
	for _, tok := range tokens {
		scanned += int64(len(ix.postings[tok]))
	}
	obs.Charge(cost, obs.CostKeywordPostingsScanned, ctrPostingsScanned, scanned)
	res := &Result{}
	cands := ix.candidates(tokens)
	res.Candidates = len(cands)
	if len(cands) == 0 {
		return res, nil
	}

	ev := &evaluator{
		ix:      ix,
		tokens:  tokens,
		contain: make(map[int32]event.Formula),
		wit:     make(map[int64]event.DNF),
	}

	// The monotone upper bound: a node is an answer only in worlds
	// where its subtree contains every keyword, so
	//
	//	P(answer at v) ≤ P(contain v) ≤ min over keywords k of
	//	                  P(some witness for k under v exists).
	//
	// Bounds are computed only when the threshold can use them; each is
	// one witness-DNF probability, far cheaper than the SLCA/ELCA
	// formula it may spare us.
	bounds := make(map[int32]float64, len(cands))
	kept := cands
	if req.MinProb > 0 {
		kept = kept[:0]
		for _, v := range cands {
			if poll != nil {
				if cerr := poll.Err(); cerr != nil {
					return nil, cerr
				}
			}
			b, err := ev.upperBound(ctx, v)
			if err != nil {
				return nil, err
			}
			bounds[v] = b
			if b < req.MinProb-tolerance {
				obs.Charge(cost, obs.CostKeywordCandidatesPruned, ctrThresholdPrunes, 1)
				res.Pruned++
				continue
			}
			kept = append(kept, v)
		}
	}

	probs := make(map[int32]float64, len(kept))
	if req.MC {
		if err := estimateWorlds(poll, cost, ix, tokens, req, kept, probs); err != nil {
			return nil, err
		}
		// An estimate can exceed the candidate's provable upper bound
		// by sampling noise; clamping is both a strictly better
		// estimator and what makes bound-based pruning exact: a pruned
		// candidate could never have survived the MinProb filter.
		for v, b := range bounds {
			if p, ok := probs[v]; ok && p > b {
				probs[v] = b
			}
		}
	} else {
		for _, v := range kept {
			if poll != nil {
				if cerr := poll.Err(); cerr != nil {
					return nil, cerr
				}
			}
			f, err := ev.answerFormula(v, req.Mode)
			if err != nil {
				return nil, err
			}
			p, err := ix.tree.Table.ProbFormulaCtx(ctx, f)
			if err != nil {
				return nil, fmt.Errorf("keyword: %w", err)
			}
			probs[v] = p
		}
	}

	for _, v := range kept {
		p := probs[v]
		if p == 0 || p < req.MinProb {
			continue
		}
		n := ix.nodes[v]
		w := 0
		for k := range tokens {
			w += len(ev.witnessDNF(k, v))
		}
		res.Answers = append(res.Answers, Answer{
			Pre:       int(v),
			Path:      ix.Path(v),
			Label:     n.label,
			Value:     n.value,
			P:         p,
			Witnesses: w,
		})
	}
	sort.Slice(res.Answers, func(i, j int) bool {
		if res.Answers[i].P != res.Answers[j].P {
			return res.Answers[i].P > res.Answers[j].P
		}
		return res.Answers[i].Pre < res.Answers[j].Pre
	})
	if req.TopK > 0 && len(res.Answers) > req.TopK {
		res.Answers = res.Answers[:req.TopK]
	}
	return res, nil
}

// RequiredTokens tokenizes, deduplicates and sorts the query keywords
// into the canonical required-token set of a search. Callers caching
// results key them by this canonical form, so keyword order and
// punctuation variants share entries.
func RequiredTokens(keywords []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, k := range keywords {
		for _, tok := range Tokenize(k) {
			if !seen[tok] {
				seen[tok] = true
				out = append(out, tok)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("keyword: no searchable tokens in keywords %q", keywords)
	}
	if len(out) > MaxTokens {
		return nil, fmt.Errorf("keyword: %d distinct tokens exceed the limit %d", len(out), MaxTokens)
	}
	sort.Strings(out)
	return out, nil
}

// candidates finds every node whose subtree contains at least one
// witness for every required token, by merging the posting lists in
// document order through an ancestor stack: postings are visited in
// preorder position order; the stack holds the root-to-current path
// restricted to posting ancestors, each entry accumulating the token
// set seen in the scanned part of its subtree. When an entry is popped
// its subtree is fully scanned, its mask folds into its parent, and a
// full mask makes it a candidate. Only O(postings × depth) stack work
// is done — subtrees without postings are never visited.
func (ix *Index) candidates(tokens []string) []int32 {
	full := uint64(1)<<uint(len(tokens)) - 1

	// ownMask maps posting nodes to their direct token sets.
	type posting struct {
		pre  int32
		mask uint64
	}
	var merged []posting
	for bit, tok := range tokens {
		for _, pre := range ix.postings[tok] {
			if ix.nodes[pre].sat {
				merged = append(merged, posting{pre, uint64(1) << uint(bit)})
			}
		}
	}
	if len(merged) == 0 {
		return nil
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].pre < merged[j].pre })
	// Merge same-node postings (a node carrying several tokens).
	dedup := merged[:1]
	for _, p := range merged[1:] {
		if p.pre == dedup[len(dedup)-1].pre {
			dedup[len(dedup)-1].mask |= p.mask
		} else {
			dedup = append(dedup, p)
		}
	}

	type frame struct {
		pre  int32
		end  int32
		mask uint64
	}
	var stack []frame
	var cands []int32
	pop := func() {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if top.mask == full {
			cands = append(cands, top.pre)
		}
		if len(stack) > 0 {
			stack[len(stack)-1].mask |= top.mask
		}
	}
	for _, p := range dedup {
		// Close every frame whose subtree ends before this posting.
		for len(stack) > 0 && stack[len(stack)-1].end <= p.pre {
			pop()
		}
		// Open the ancestors of p below the current top (they carry no
		// postings of their own so far, or they'd be on the stack).
		var chain []int32
		for v := p.pre; v >= 0; v = ix.nodes[v].parent {
			if len(stack) > 0 && stack[len(stack)-1].pre == v {
				break
			}
			chain = append(chain, v)
		}
		for i := len(chain) - 1; i >= 0; i-- {
			n := ix.nodes[chain[i]]
			stack = append(stack, frame{pre: n.pre, end: n.end})
		}
		stack[len(stack)-1].mask |= p.mask
	}
	for len(stack) > 0 {
		pop()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	return cands
}

// evaluator builds the probability formulas of one search, memoizing
// the per-node containment formulas (a parent's SLCA/ELCA formula
// refers to its children's containment) and the per-(token, node)
// witness DNFs they and the pruning bound share.
type evaluator struct {
	ix      *Index
	tokens  []string
	contain map[int32]event.Formula
	wit     map[int64]event.DNF
}

// witnessDNF returns the disjunction of the witness path conditions for
// token index k under node v — one clause per witness, the containment
// factor for that keyword — memoized so the pruning bound, the answer
// formulas and the witness count never re-scan the posting lists.
func (e *evaluator) witnessDNF(k int, v int32) event.DNF {
	key := int64(k)<<32 | int64(v)
	if d, ok := e.wit[key]; ok {
		return d
	}
	var d event.DNF
	for _, u := range e.ix.witnesses(e.tokens[k], v) {
		d = append(d, e.ix.nodes[u].path)
	}
	e.wit[key] = d
	return d
}

// containF is the containment event of node v: its subtree holds a
// witness for every keyword (which entails that v itself exists, since
// every witness path condition includes v's). Per keyword it is the
// disjunction of the witness path conditions — the DNF over
// match-witness conjunctions — and the conjunction over keywords makes
// the full formula.
func (e *evaluator) containF(v int32) event.Formula {
	if f, ok := e.contain[v]; ok {
		return f
	}
	parts := make([]event.Formula, 0, len(e.tokens))
	for k := range e.tokens {
		// An empty witness DNF is false: no witness, no containment.
		parts = append(parts, event.FDNF(e.witnessDNF(k, v)))
	}
	f := event.FAnd(parts...)
	e.contain[v] = f
	return f
}

// upperBound computes min over keywords of P(some witness exists under
// v): each factor of the containment formula alone, so it dominates
// P(contain v) and hence the answer probability in either mode.
func (e *evaluator) upperBound(ctx context.Context, v int32) (float64, error) {
	bound := 1.0
	for k := range e.tokens {
		p, err := e.ix.tree.Table.ProbDNFCtx(ctx, e.witnessDNF(k, v))
		if err != nil {
			return 0, fmt.Errorf("keyword: %w", err)
		}
		if p < bound {
			bound = p
		}
	}
	return bound, nil
}

// answerFormula builds the event "v is a Mode answer" as a Boolean
// formula over the document's events.
//
// SLCA: v's subtree contains every keyword and no child's subtree does
// (containment is monotone down the tree, so excluding children
// excludes all descendants):
//
//	contain(v) ∧ ¬ ∨_{c child of v} contain(c)
//
// ELCA: for every keyword there is a witness that is not hidden under a
// descendant containing every keyword itself. A witness u under child c
// is hidden iff some node d with v < d ≤ u has contain(d) — and by
// monotonicity that reduces to contain(c): if c does not contain every
// keyword, no deeper node does. So per keyword k:
//
//	(v itself carries k) ∨ ∨_{c child of v} (¬contain(c) ∧ ∨_{u ∈ W_k(c)} path(u))
//
// conjoined over keywords, with v's own path condition guarding the
// direct-carry disjunct.
func (e *evaluator) answerFormula(v int32, mode Mode) (event.Formula, error) {
	if mode == SLCA {
		parts := []event.Formula{e.containF(v)}
		for c := v + 1; c < e.ix.nodes[v].end; c = e.ix.nodes[c].end {
			if f := e.containF(c); f != event.FFalse {
				parts = append(parts, event.FNot(f))
			}
		}
		return event.FAnd(parts...), nil
	}
	var conj []event.Formula
	for _, tok := range e.tokens {
		var alts []event.Formula
		if e.ix.hasToken(tok, v) && e.ix.nodes[v].sat {
			alts = append(alts, event.FCond(e.ix.nodes[v].path))
		}
		// Group the remaining witnesses by the child subtree holding
		// them; witnesses under a child that contains every keyword are
		// excluded as a group.
		byChild := make(map[int32]event.DNF)
		var order []int32
		for _, u := range e.ix.witnesses(tok, v) {
			if u == v {
				continue
			}
			c := e.ix.childToward(v, u)
			if _, ok := byChild[c]; !ok {
				order = append(order, c)
			}
			byChild[c] = append(byChild[c], e.ix.nodes[u].path)
		}
		for _, c := range order {
			alts = append(alts, event.FAnd(
				event.FNot(e.containF(c)),
				event.FDNF(byChild[c]),
			))
		}
		conj = append(conj, event.FOr(alts...))
	}
	return event.FAnd(conj...), nil
}

// estimateWorlds estimates every kept candidate's answer probability by
// sampling worlds: each sample draws one assignment of the document's
// events (as fuzzy.Tree.Sample does), determines which nodes exist, and
// evaluates the SLCA/ELCA sets of that world with the linear mask
// recurrence. All candidates are estimated from the same worlds, so the
// estimates are independent of which candidates pruning kept.
func estimateWorlds(ctx context.Context, cost *obs.Cost, ix *Index, tokens []string, req Request, kept []int32, probs map[int32]float64) error {
	if len(kept) == 0 {
		return nil // everything pruned; don't pay for the sampling loop
	}
	samples := req.Samples
	if samples <= 0 {
		samples = 1000
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	r := rand.New(rand.NewSource(seed))
	events := ix.tree.Events()
	for _, ev := range events {
		if !ix.tree.Table.Has(ev) {
			return fmt.Errorf("keyword: unknown event %q in document", ev)
		}
	}

	full := uint64(1)<<uint(len(tokens)) - 1
	own := make([]uint64, len(ix.nodes))
	for bit, tok := range tokens {
		for _, pre := range ix.postings[tok] {
			own[pre] |= uint64(1) << uint(bit)
		}
	}
	keptSet := make(map[int32]bool, len(kept))
	for _, v := range kept {
		keptSet[v] = true
	}

	exists := make([]bool, len(ix.nodes))
	mask := make([]uint64, len(ix.nodes))
	excl := make([]uint64, len(ix.nodes)) // ELCA: union of non-full child masks
	hits := make(map[int32]int, len(kept))
	done := 0
	defer func() { event.ChargeMCSamples(cost, int64(done)) }()
	for s := 0; s < samples; s++ {
		// One sample is O(nodes); a per-sample poll is noise next to it.
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		done++
		a := ix.tree.Table.SampleAssignment(events, r)
		for i := range ix.nodes {
			n := &ix.nodes[i]
			up := n.parent < 0 || exists[n.parent]
			exists[i] = up && (i == 0 || n.path.Eval(a))
			if exists[i] {
				mask[i] = own[i]
			} else {
				mask[i] = 0
			}
			excl[i] = 0
		}
		// Children precede nothing: reverse preorder folds each subtree
		// into its parent before the parent is read.
		for i := len(ix.nodes) - 1; i > 0; i-- {
			if !exists[i] {
				continue
			}
			p := ix.nodes[i].parent
			if mask[i] != full {
				excl[p] |= mask[i]
			}
			mask[p] |= mask[i]
		}
		for v := range keptSet {
			if !exists[v] {
				continue
			}
			ok := false
			switch req.Mode {
			case SLCA:
				if mask[v] == full {
					ok = true
					for c := v + 1; c < ix.nodes[v].end; c = ix.nodes[c].end {
						if exists[c] && mask[c] == full {
							ok = false
							break
						}
					}
				}
			case ELCA:
				ok = own[v]|excl[v] == full
			}
			if ok {
				hits[v]++
			}
		}
	}
	for _, v := range kept {
		probs[v] = float64(hits[v]) / float64(samples)
	}
	return nil
}
