// Package tree implements the data model of Abiteboul and Senellart
// (EDBT 2006): finite, unordered, labeled data trees with no
// attribute/element distinction and no mixed content.
//
// A node carries a label and, if it is a leaf, an optional textual value.
// Children form a bag: the same subtree may occur several times under the
// same parent (the paper's running example has two identical B("foo")
// children), and sibling order is irrelevant. Equality, hashing and
// normalization therefore use canonical forms that sort serialized
// children while preserving multiplicity (see canon.go).
package tree

import (
	"errors"
	"fmt"
	"sort"
)

// Node is a node of a finite unordered data tree. A Node with children
// must have an empty Value (no mixed content); a leaf may carry a Value.
// The zero value is not a valid node: labels must be non-empty.
type Node struct {
	// Label is the element name. It must be non-empty.
	Label string
	// Value is the textual content of a leaf. Internal nodes must have
	// an empty Value.
	Value string
	// Children is the bag of subtrees. Order carries no meaning.
	Children []*Node
}

// New returns a new internal node with the given label and children.
func New(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// NewLeaf returns a new leaf node with the given label and textual value.
func NewLeaf(label, value string) *Node {
	return &Node{Label: label, Value: value}
}

// Add appends children to n and returns n, enabling fluent construction.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Label: n.Label, Value: n.Value}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Depth returns the height of the subtree rooted at n, counting n itself,
// so a single node has depth 1.
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Leaves returns the number of leaves in the subtree rooted at n.
func (n *Node) Leaves() int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	s := 0
	for _, c := range n.Children {
		s += c.Leaves()
	}
	return s
}

// Walk visits every node of the subtree rooted at n in preorder.
// If fn returns false the walk stops early.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	stack := []*Node{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(cur) {
			return
		}
		for i := len(cur.Children) - 1; i >= 0; i-- {
			stack = append(stack, cur.Children[i])
		}
	}
}

// WalkParent visits every node in preorder together with its parent
// (nil for the root).
func (n *Node) WalkParent(fn func(node, parent *Node) bool) {
	if n == nil {
		return
	}
	type frame struct{ node, parent *Node }
	stack := []frame{{n, nil}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(cur.node, cur.parent) {
			return
		}
		for i := len(cur.node.Children) - 1; i >= 0; i-- {
			stack = append(stack, frame{cur.node.Children[i], cur.node})
		}
	}
}

// RemoveChild removes the first occurrence of child (by pointer identity)
// from n's children and reports whether it was found.
func (n *Node) RemoveChild(child *Node) bool {
	for i, c := range n.Children {
		if c == child {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			return true
		}
	}
	return false
}

// ReplaceChild replaces the first occurrence of old (by pointer identity)
// with the given replacements and reports whether old was found.
func (n *Node) ReplaceChild(old *Node, repl ...*Node) bool {
	for i, c := range n.Children {
		if c == old {
			rest := append([]*Node{}, n.Children[i+1:]...)
			n.Children = append(n.Children[:i], repl...)
			n.Children = append(n.Children, rest...)
			return true
		}
	}
	return false
}

// Validate checks the structural invariants of the data model: non-empty
// labels everywhere and no mixed content (a node may have children or a
// value, not both). It returns the first violation found.
func (n *Node) Validate() error {
	if n == nil {
		return errors.New("tree: nil node")
	}
	var err error
	n.Walk(func(m *Node) bool {
		if m.Label == "" {
			err = errors.New("tree: node with empty label")
			return false
		}
		if m.Value != "" && len(m.Children) > 0 {
			err = fmt.Errorf("tree: mixed content at %q (value %q with %d children)",
				m.Label, m.Value, len(m.Children))
			return false
		}
		return true
	})
	return err
}

// Equal reports whether a and b are isomorphic as unordered trees: same
// labels, same values, and a bijection between child bags such that
// corresponding subtrees are Equal.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	return Canonical(a) == Canonical(b)
}

// SortCanonical reorders, in place, the children of every node of the
// subtree rooted at n into canonical order. The tree denotes the same
// unordered tree afterwards; sorting only makes serialization
// deterministic.
func SortCanonical(n *Node) {
	if n == nil {
		return
	}
	for _, c := range n.Children {
		SortCanonical(c)
	}
	sort.SliceStable(n.Children, func(i, j int) bool {
		return Canonical(n.Children[i]) < Canonical(n.Children[j])
	})
}

// String returns the textual representation of the subtree rooted at n in
// the format accepted by Parse, with children in their stored order.
func (n *Node) String() string {
	return Format(n)
}
