package tree

import (
	"strings"
	"testing"
)

// slide5 builds the data tree of slide 5 of the paper:
// A with children B("foo"), B("foo"), E(C("bar")), D(F("nee")).
func slide5() *Node {
	return New("A",
		NewLeaf("B", "foo"),
		NewLeaf("B", "foo"),
		New("E", NewLeaf("C", "bar")),
		New("D", NewLeaf("F", "nee")),
	)
}

func TestNewAndAdd(t *testing.T) {
	n := New("A").Add(NewLeaf("B", "x"))
	if n.Label != "A" || len(n.Children) != 1 {
		t.Fatalf("unexpected node %v", n)
	}
	if n.Children[0].Label != "B" || n.Children[0].Value != "x" {
		t.Fatalf("unexpected child %v", n.Children[0])
	}
}

func TestSizeDepthLeaves(t *testing.T) {
	n := slide5()
	if got := n.Size(); got != 7 {
		t.Errorf("Size = %d, want 7", got)
	}
	if got := n.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	if got := n.Leaves(); got != 4 {
		t.Errorf("Leaves = %d, want 4", got)
	}
	var nilNode *Node
	if nilNode.Size() != 0 || nilNode.Depth() != 0 || nilNode.Leaves() != 0 {
		t.Errorf("nil node should have zero size/depth/leaves")
	}
}

func TestIsLeaf(t *testing.T) {
	if !NewLeaf("B", "x").IsLeaf() {
		t.Error("leaf not reported as leaf")
	}
	if New("A", New("B")).IsLeaf() {
		t.Error("internal node reported as leaf")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := slide5()
	c := orig.Clone()
	if !Equal(orig, c) {
		t.Fatal("clone not equal to original")
	}
	c.Children[0].Value = "changed"
	if orig.Children[0].Value != "foo" {
		t.Error("mutating clone affected original")
	}
	if Equal(orig, c) {
		t.Error("trees equal after divergent mutation")
	}
}

func TestCloneNil(t *testing.T) {
	var n *Node
	if n.Clone() != nil {
		t.Error("clone of nil should be nil")
	}
}

func TestWalkPreorderAndEarlyStop(t *testing.T) {
	n := slide5()
	var labels []string
	n.Walk(func(m *Node) bool {
		labels = append(labels, m.Label)
		return true
	})
	want := "A B B E C D F"
	if got := strings.Join(labels, " "); got != want {
		t.Errorf("preorder = %q, want %q", got, want)
	}

	count := 0
	n.Walk(func(m *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d nodes, want 3", count)
	}
}

func TestWalkParent(t *testing.T) {
	n := slide5()
	parents := map[string]string{}
	n.WalkParent(func(node, parent *Node) bool {
		if parent != nil {
			parents[node.Label+":"+node.Value] = parent.Label
		}
		return true
	})
	if parents["C:bar"] != "E" {
		t.Errorf("parent of C = %q, want E", parents["C:bar"])
	}
	if parents["F:nee"] != "D" {
		t.Errorf("parent of F = %q, want D", parents["F:nee"])
	}
}

func TestRemoveChild(t *testing.T) {
	a := New("A")
	b1 := NewLeaf("B", "1")
	b2 := NewLeaf("B", "2")
	a.Add(b1, b2)
	if !a.RemoveChild(b1) {
		t.Fatal("RemoveChild did not find child")
	}
	if len(a.Children) != 1 || a.Children[0] != b2 {
		t.Fatalf("unexpected children after removal: %v", a.Children)
	}
	if a.RemoveChild(b1) {
		t.Error("RemoveChild found already-removed child")
	}
}

func TestReplaceChild(t *testing.T) {
	a := New("A")
	b := NewLeaf("B", "1")
	c := NewLeaf("C", "2")
	a.Add(b, c)
	r1 := NewLeaf("R", "1")
	r2 := NewLeaf("R", "2")
	if !a.ReplaceChild(b, r1, r2) {
		t.Fatal("ReplaceChild did not find child")
	}
	if len(a.Children) != 3 || a.Children[0] != r1 || a.Children[1] != r2 || a.Children[2] != c {
		t.Fatalf("unexpected children after replace: %v", a.Children)
	}
	// Replace with nothing removes the node.
	if !a.ReplaceChild(c) {
		t.Fatal("ReplaceChild with empty replacement did not find child")
	}
	if len(a.Children) != 2 {
		t.Fatalf("unexpected children after empty replace: %v", a.Children)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		n    *Node
		ok   bool
	}{
		{"valid", slide5(), true},
		{"single leaf", NewLeaf("A", "v"), true},
		{"empty label", New(""), false},
		{"empty label deep", New("A", New("")), false},
		{"mixed content", &Node{Label: "A", Value: "v", Children: []*Node{New("B")}}, false},
		{"nil", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.n.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate() error = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestEqualUnordered(t *testing.T) {
	a := New("A", NewLeaf("B", "1"), NewLeaf("C", "2"))
	b := New("A", NewLeaf("C", "2"), NewLeaf("B", "1"))
	if !Equal(a, b) {
		t.Error("sibling order should not matter")
	}
}

func TestEqualBagSemantics(t *testing.T) {
	one := New("A", NewLeaf("B", "foo"))
	two := New("A", NewLeaf("B", "foo"), NewLeaf("B", "foo"))
	if Equal(one, two) {
		t.Error("duplicate children must be distinguished (bag semantics)")
	}
	twoAgain := New("A", NewLeaf("B", "foo"), NewLeaf("B", "foo"))
	if !Equal(two, twoAgain) {
		t.Error("identical bags should be equal")
	}
}

func TestEqualNil(t *testing.T) {
	if !Equal(nil, nil) {
		t.Error("nil == nil")
	}
	if Equal(nil, New("A")) || Equal(New("A"), nil) {
		t.Error("nil != non-nil")
	}
}

func TestSortCanonicalDeterministic(t *testing.T) {
	a := New("A", New("E", NewLeaf("C", "bar")), NewLeaf("B", "foo"), NewLeaf("B", "aaa"))
	b := New("A", NewLeaf("B", "aaa"), NewLeaf("B", "foo"), New("E", NewLeaf("C", "bar")))
	SortCanonical(a)
	SortCanonical(b)
	if Format(a) != Format(b) {
		t.Errorf("canonical sort not deterministic:\n%s\n%s", Format(a), Format(b))
	}
}
