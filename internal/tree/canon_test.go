package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCanonicalBasics(t *testing.T) {
	if got := Canonical(nil); got != "" {
		t.Errorf("Canonical(nil) = %q, want empty", got)
	}
	leaf := NewLeaf("B", "foo")
	if got, want := Canonical(leaf), `"B":"foo"`; got != want {
		t.Errorf("Canonical(leaf) = %q, want %q", got, want)
	}
	n := New("A", NewLeaf("C", "2"), NewLeaf("B", "1"))
	m := New("A", NewLeaf("B", "1"), NewLeaf("C", "2"))
	if Canonical(n) != Canonical(m) {
		t.Error("canonical form should ignore sibling order")
	}
}

func TestCanonicalQuotesSpecialCharacters(t *testing.T) {
	// A label containing the separator characters must not create
	// ambiguity with the structural syntax.
	tricky := New(`A("x)`, NewLeaf(`B,`, `v"w`))
	plain := New("A", NewLeaf("B", "vw"))
	if Canonical(tricky) == Canonical(plain) {
		t.Error("special characters collide")
	}
	// Round-trip sanity: the canonical of a clone is identical.
	if Canonical(tricky) != Canonical(tricky.Clone()) {
		t.Error("canonical form not stable under clone")
	}
}

func TestCanonicalDistinguishesValueFromChild(t *testing.T) {
	withValue := NewLeaf("A", "B")
	withChild := New("A", New("B"))
	if Canonical(withValue) == Canonical(withChild) {
		t.Error("value and child with same name must differ")
	}
}

func TestHashAgreesWithCanonical(t *testing.T) {
	a := New("A", NewLeaf("B", "1"), New("E", NewLeaf("C", "2")))
	b := New("A", New("E", NewLeaf("C", "2")), NewLeaf("B", "1"))
	if Hash(a) != Hash(b) {
		t.Error("isomorphic trees must hash equal")
	}
	c := New("A", NewLeaf("B", "1"))
	if Hash(a) == Hash(c) {
		t.Error("hash collision between different small trees (suspicious)")
	}
}

// randomTree builds a random tree with the given rng; used by property
// tests below and exported to siblings through test helpers only.
func randomTree(r *rand.Rand, depth int) *Node {
	labels := []string{"A", "B", "C", "D", "E"}
	values := []string{"", "foo", "bar", "nee", "42"}
	n := &Node{Label: labels[r.Intn(len(labels))]}
	if depth <= 0 || r.Intn(3) == 0 {
		n.Value = values[r.Intn(len(values))]
		return n
	}
	k := r.Intn(4)
	for i := 0; i < k; i++ {
		n.Children = append(n.Children, randomTree(r, depth-1))
	}
	if len(n.Children) == 0 {
		n.Value = values[r.Intn(len(values))]
	}
	return n
}

// shuffle returns a deep copy of n with every child list randomly
// permuted.
func shuffle(r *rand.Rand, n *Node) *Node {
	c := n.Clone()
	var walk func(m *Node)
	walk = func(m *Node) {
		r.Shuffle(len(m.Children), func(i, j int) {
			m.Children[i], m.Children[j] = m.Children[j], m.Children[i]
		})
		for _, ch := range m.Children {
			walk(ch)
		}
	}
	walk(c)
	return c
}

func TestCanonicalInvariantUnderShuffle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomTree(r, 4)
		s := shuffle(r, n)
		return Canonical(n) == Canonical(s) && Equal(n, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalInjectiveOnMutations(t *testing.T) {
	// Changing any single leaf value must change the canonical form.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomTree(r, 3)
		m := n.Clone()
		// Find a leaf and change its value.
		var leaf *Node
		m.Walk(func(x *Node) bool {
			if x.IsLeaf() {
				leaf = x
			}
			return true
		})
		if leaf == nil {
			return true
		}
		leaf.Value += "_mutated"
		return Canonical(n) != Canonical(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortCanonicalPreservesIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomTree(r, 4)
		before := Canonical(n)
		SortCanonical(n)
		return Canonical(n) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
