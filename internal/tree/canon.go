package tree

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// Canonical returns a canonical serialization of the subtree rooted at n.
// Two trees have the same canonical string if and only if they are
// isomorphic as unordered trees with bag semantics for children: children
// are serialized recursively and sorted lexicographically, preserving
// duplicates. Labels and values are quoted, so arbitrary characters are
// handled unambiguously.
func Canonical(n *Node) string {
	if n == nil {
		return ""
	}
	var b strings.Builder
	writeCanonical(&b, n)
	return b.String()
}

func writeCanonical(b *strings.Builder, n *Node) {
	b.WriteString(strconv.Quote(n.Label))
	if n.Value != "" {
		b.WriteByte(':')
		b.WriteString(strconv.Quote(n.Value))
	}
	if len(n.Children) == 0 {
		return
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = Canonical(c)
	}
	sort.Strings(parts)
	b.WriteByte('(')
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p)
	}
	b.WriteByte(')')
}

// Hash returns a 64-bit hash of the canonical form of n, suitable for
// grouping isomorphic trees. Hash collisions are possible in principle,
// so equality decisions must compare Canonical strings; Hash is a fast
// pre-filter.
func Hash(n *Node) uint64 {
	h := fnv.New64a()
	h.Write([]byte(Canonical(n)))
	return h.Sum64()
}
