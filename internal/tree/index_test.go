package tree

import "testing"

func TestIndexBasics(t *testing.T) {
	root := slide5()
	ix := NewIndex(root)

	if ix.Root() != root {
		t.Error("Root mismatch")
	}
	if ix.Len() != 7 {
		t.Errorf("Len = %d, want 7", ix.Len())
	}
	if len(ix.Nodes()) != 7 {
		t.Errorf("Nodes length = %d, want 7", len(ix.Nodes()))
	}
	if ix.Nodes()[0] != root {
		t.Error("preorder should start at root")
	}
}

func TestIndexParentDepth(t *testing.T) {
	root := slide5()
	ix := NewIndex(root)

	e := root.Children[2] // E
	c := e.Children[0]    // C
	if ix.Parent(root) != nil {
		t.Error("root parent should be nil")
	}
	if ix.Parent(c) != e {
		t.Error("parent of C should be E")
	}
	if ix.Depth(root) != 0 || ix.Depth(e) != 1 || ix.Depth(c) != 2 {
		t.Errorf("depths: root=%d E=%d C=%d", ix.Depth(root), ix.Depth(e), ix.Depth(c))
	}
	if ix.Depth(New("X")) != -1 {
		t.Error("foreign node should have depth -1")
	}
}

func TestIndexOrder(t *testing.T) {
	root := slide5()
	ix := NewIndex(root)
	if ix.Order(root) != 0 {
		t.Error("root should be first in preorder")
	}
	prev := -1
	for _, n := range ix.Nodes() {
		o := ix.Order(n)
		if o != prev+1 {
			t.Fatalf("preorder positions not sequential: got %d after %d", o, prev)
		}
		prev = o
	}
	if ix.Order(New("X")) != -1 {
		t.Error("foreign node should have order -1")
	}
}

func TestIndexByLabel(t *testing.T) {
	root := slide5()
	ix := NewIndex(root)
	if got := len(ix.ByLabel("B")); got != 2 {
		t.Errorf("ByLabel(B) = %d nodes, want 2", got)
	}
	if got := len(ix.ByLabel("Z")); got != 0 {
		t.Errorf("ByLabel(Z) = %d nodes, want 0", got)
	}
}

func TestIndexIsAncestor(t *testing.T) {
	root := slide5()
	ix := NewIndex(root)
	e := root.Children[2]
	c := e.Children[0]
	if !ix.IsAncestor(root, c) {
		t.Error("root should be ancestor of C")
	}
	if !ix.IsAncestor(e, c) {
		t.Error("E should be ancestor of C")
	}
	if ix.IsAncestor(c, e) {
		t.Error("C is not ancestor of E")
	}
	if ix.IsAncestor(c, c) {
		t.Error("ancestor relation is strict")
	}
	b := root.Children[0]
	if ix.IsAncestor(b, c) {
		t.Error("B is not ancestor of C")
	}
}

func TestIndexPathToRoot(t *testing.T) {
	root := slide5()
	ix := NewIndex(root)
	e := root.Children[2]
	c := e.Children[0]
	path := ix.PathToRoot(c)
	if len(path) != 3 || path[0] != c || path[1] != e || path[2] != root {
		t.Errorf("unexpected path: %v", path)
	}
}

func TestIndexContains(t *testing.T) {
	root := slide5()
	ix := NewIndex(root)
	if !ix.Contains(root.Children[0]) {
		t.Error("Contains should find tree node")
	}
	if ix.Contains(New("X")) {
		t.Error("Contains should reject foreign node")
	}
}

func TestIndexEmpty(t *testing.T) {
	ix := NewIndex(nil)
	if ix.Len() != 0 {
		t.Error("empty index should have no nodes")
	}
}
