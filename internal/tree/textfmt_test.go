package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSlide5(t *testing.T) {
	n, err := Parse("A(B:foo, B:foo, E(C:bar), D(F:nee))")
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(n, slide5()) {
		t.Errorf("parsed tree differs from hand-built slide-5 tree:\n%s\n%s",
			Format(n), Format(slide5()))
	}
}

func TestParseSingleNode(t *testing.T) {
	n, err := Parse("A")
	if err != nil {
		t.Fatal(err)
	}
	if n.Label != "A" || n.Value != "" || len(n.Children) != 0 {
		t.Errorf("unexpected node: %+v", n)
	}
}

func TestParseLeafValue(t *testing.T) {
	n, err := Parse("name:Alice")
	if err != nil {
		t.Fatal(err)
	}
	if n.Label != "name" || n.Value != "Alice" {
		t.Errorf("unexpected node: %+v", n)
	}
}

func TestParseQuoted(t *testing.T) {
	n, err := Parse(`"weird label":"value, with (chars)"`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Label != "weird label" || n.Value != "value, with (chars)" {
		t.Errorf("unexpected node: %+v", n)
	}
}

func TestParseWhitespace(t *testing.T) {
	n, err := Parse("  A ( B : foo ,\n\tC ( D : bar ) ) ")
	if err != nil {
		t.Fatal(err)
	}
	want := New("A", NewLeaf("B", "foo"), New("C", NewLeaf("D", "bar")))
	if !Equal(n, want) {
		t.Errorf("got %s, want %s", Format(n), Format(want))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"A(",
		"A)",
		"A(B",
		"A(B,)",
		"A(,B)",
		"A B",
		"A(B))",
		`"unterminated`,
		"A:",
		":v",
		"A()",
	}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseRejectsMixedContent(t *testing.T) {
	// label:value(children) is syntactically parseable but violates the
	// data model.
	if _, err := Parse("A:v(B:x)"); err == nil {
		t.Error("mixed content accepted")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of invalid input did not panic")
		}
	}()
	MustParse("(((")
}

func TestFormatQuoting(t *testing.T) {
	n := New("A", NewLeaf("B,", "va(lue"))
	s := Format(n)
	if !strings.Contains(s, `"B,"`) || !strings.Contains(s, `"va(lue"`) {
		t.Errorf("special characters not quoted: %s", s)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s, err)
	}
	if !Equal(n, back) {
		t.Error("quoting round-trip failed")
	}
}

func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomTree(r, 4)
		if n.Validate() != nil {
			return true // random generator made something invalid; skip
		}
		back, err := Parse(Format(n))
		if err != nil {
			t.Logf("round trip parse failed for %s: %v", Format(n), err)
			return false
		}
		return Equal(n, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
