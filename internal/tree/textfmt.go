package tree

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The compact text format for data trees used throughout tests, tools and
// examples:
//
//	node  := label [":" value] ["(" node ("," node)* ")"]
//	label := bareword | quoted Go string
//	value := bareword | quoted Go string
//
// A bareword is a run of letters, digits and the characters '_', '-' and
// '.'. Anything else must be written as a double-quoted Go string literal.
// Whitespace between tokens is ignored. Example (the paper's slide-5
// document):
//
//	A(B:foo, B:foo, E(C:bar), D(F:nee))

// Format renders the subtree rooted at n in the text format accepted by
// Parse, with children in stored order.
func Format(n *Node) string {
	if n == nil {
		return ""
	}
	var b strings.Builder
	writeText(&b, n)
	return b.String()
}

func writeText(b *strings.Builder, n *Node) {
	b.WriteString(quoteIfNeeded(n.Label))
	if n.Value != "" {
		b.WriteByte(':')
		b.WriteString(quoteIfNeeded(n.Value))
	}
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			writeText(b, c)
		}
		b.WriteByte(')')
	}
}

func isBareword(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' && r != '.' {
			return false
		}
	}
	return true
}

func quoteIfNeeded(s string) string {
	if isBareword(s) {
		return s
	}
	return strconv.Quote(s)
}

// Parse parses the text format into a data tree.
func Parse(s string) (*Node, error) {
	p := &textParser{input: s}
	p.skipSpace()
	n, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, p.errf("trailing input")
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// MustParse is like Parse but panics on error. It is intended for tests
// and package-level examples with constant inputs.
func MustParse(s string) *Node {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

type textParser struct {
	input string
	pos   int
}

func (p *textParser) errf(format string, args ...any) error {
	return fmt.Errorf("tree: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *textParser) skipSpace() {
	for p.pos < len(p.input) {
		switch p.input[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *textParser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

// parseAtom parses a bareword or a quoted string.
func (p *textParser) parseAtom() (string, error) {
	if p.peek() == '"' {
		start := p.pos
		// Scan a Go string literal: find the closing unescaped quote.
		i := p.pos + 1
		for i < len(p.input) {
			switch p.input[i] {
			case '\\':
				i += 2
				continue
			case '"':
				lit := p.input[start : i+1]
				s, err := strconv.Unquote(lit)
				if err != nil {
					return "", p.errf("bad quoted string %s: %v", lit, err)
				}
				p.pos = i + 1
				return s, nil
			}
			i++
		}
		return "", p.errf("unterminated quoted string")
	}
	start := p.pos
	for p.pos < len(p.input) {
		r := rune(p.input[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected label or value")
	}
	return p.input[start:p.pos], nil
}

func (p *textParser) parseNode() (*Node, error) {
	label, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	n := &Node{Label: label}
	p.skipSpace()
	if p.peek() == ':' {
		p.pos++
		p.skipSpace()
		v, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		n.Value = v
		p.skipSpace()
	}
	if p.peek() == '(' {
		p.pos++
		for {
			p.skipSpace()
			c, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
			p.skipSpace()
			switch p.peek() {
			case ',':
				p.pos++
			case ')':
				p.pos++
				return n, nil
			default:
				return nil, p.errf("expected ',' or ')'")
			}
		}
	}
	return n, nil
}
