package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness: Parse must never panic on arbitrary input.
func TestParseNeverPanics(t *testing.T) {
	alphabet := []byte(`AB:foo"(),\ `)
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		_, _ = Parse(string(buf))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
