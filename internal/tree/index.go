package tree

// Index precomputes navigational structure over a tree: parent links,
// depths, preorder numbering and a label index. Pattern matching and
// update application use it to answer parent/ancestor queries in O(1)
// per step without storing parent pointers in Node itself (nodes are
// freely shared and rearranged by updates; the index belongs to one
// snapshot of one tree).
//
// The index is immutable: if the tree is mutated, build a new Index.
type Index struct {
	root    *Node
	parent  map[*Node]*Node
	depth   map[*Node]int
	order   map[*Node]int // preorder position
	size    map[*Node]int // subtree sizes
	nodes   []*Node       // preorder
	byLabel map[string][]*Node
}

// NewIndex builds an index over the tree rooted at root.
func NewIndex(root *Node) *Index {
	ix := &Index{
		root:    root,
		parent:  make(map[*Node]*Node),
		depth:   make(map[*Node]int),
		order:   make(map[*Node]int),
		size:    make(map[*Node]int),
		byLabel: make(map[string][]*Node),
	}
	var walk func(n, parent *Node, d int) int
	walk = func(n, parent *Node, d int) int {
		ix.parent[n] = parent
		ix.depth[n] = d
		ix.order[n] = len(ix.nodes)
		ix.nodes = append(ix.nodes, n)
		ix.byLabel[n.Label] = append(ix.byLabel[n.Label], n)
		s := 1
		for _, c := range n.Children {
			s += walk(c, n, d+1)
		}
		ix.size[n] = s
		return s
	}
	if root != nil {
		walk(root, nil, 0)
	}
	return ix
}

// SubtreeSize returns the number of nodes in the subtree rooted at n, or
// 0 if n is not in the tree.
func (ix *Index) SubtreeSize(n *Node) int { return ix.size[n] }

// Root returns the indexed root.
func (ix *Index) Root() *Node { return ix.root }

// Len returns the number of indexed nodes.
func (ix *Index) Len() int { return len(ix.nodes) }

// Nodes returns all nodes in preorder. The returned slice must not be
// modified.
func (ix *Index) Nodes() []*Node { return ix.nodes }

// Contains reports whether n belongs to the indexed tree.
func (ix *Index) Contains(n *Node) bool {
	_, ok := ix.depth[n]
	return ok
}

// Parent returns the parent of n, or nil for the root or for nodes not in
// the tree.
func (ix *Index) Parent(n *Node) *Node { return ix.parent[n] }

// Depth returns the depth of n (root has depth 0), or -1 if n is not in
// the tree.
func (ix *Index) Depth(n *Node) int {
	d, ok := ix.depth[n]
	if !ok {
		return -1
	}
	return d
}

// Order returns the preorder position of n, or -1 if n is not in the tree.
func (ix *Index) Order(n *Node) int {
	o, ok := ix.order[n]
	if !ok {
		return -1
	}
	return o
}

// ByLabel returns the nodes with the given label in preorder. The
// returned slice must not be modified.
func (ix *Index) ByLabel(label string) []*Node { return ix.byLabel[label] }

// IsAncestor reports whether a is a proper ancestor of d.
func (ix *Index) IsAncestor(a, d *Node) bool {
	if a == d {
		return false
	}
	for p := ix.parent[d]; p != nil; p = ix.parent[p] {
		if p == a {
			return true
		}
	}
	return false
}

// PathToRoot returns the path d, parent(d), …, root.
func (ix *Index) PathToRoot(d *Node) []*Node {
	var path []*Node
	for n := d; n != nil; n = ix.parent[n] {
		path = append(path, n)
	}
	return path
}
