// Package xupdate implements the XML update-transaction language of the
// warehouse, in the spirit of the XUpdate syntax the paper's
// implementation used (slide 16: "updates expressed in XUpdate").
//
// A transaction document looks like:
//
//	<transaction confidence="0.9" event="w3">
//	  <where>A $a(B $b, C $c)</where>
//	  <insert into="$a"><D>value</D></insert>
//	  <delete select="$c"/>
//	</transaction>
//
// The <where> element carries the TPWJ query in the textual syntax of the
// tpwj package; <insert into="$v"> carries one XML subtree to insert as a
// child of the node bound to $v; <delete select="$v"/> deletes the
// subtree rooted at the node bound to $v. The optional event attribute
// names the confidence event minted on fuzzy application. Several
// transactions can be grouped under <transactions>.
package xupdate

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/tpwj"
	"repro/internal/update"
	"repro/internal/xmlio"
)

// ReadTransaction parses one <transaction> document.
func ReadTransaction(r io.Reader) (*update.Transaction, error) {
	dec := xml.NewDecoder(r)
	start, err := nextStart(dec)
	if err != nil {
		return nil, err
	}
	if start.Name.Local != "transaction" {
		return nil, fmt.Errorf("xupdate: expected <transaction>, found <%s>", start.Name.Local)
	}
	return readTransactionFrom(dec, start)
}

// ParseTransaction parses one <transaction> from a byte slice.
func ParseTransaction(data []byte) (*update.Transaction, error) {
	return ReadTransaction(bytes.NewReader(data))
}

// ReadTransactions parses a <transactions> document into its list of
// transactions (an empty list is allowed).
func ReadTransactions(r io.Reader) ([]*update.Transaction, error) {
	dec := xml.NewDecoder(r)
	start, err := nextStart(dec)
	if err != nil {
		return nil, err
	}
	if start.Name.Local != "transactions" {
		return nil, fmt.Errorf("xupdate: expected <transactions>, found <%s>", start.Name.Local)
	}
	var out []*update.Transaction
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xupdate: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "transaction" {
				return nil, fmt.Errorf("xupdate: unexpected <%s> in <transactions>", t.Name.Local)
			}
			tx, err := readTransactionFrom(dec, t)
			if err != nil {
				return nil, err
			}
			out = append(out, tx)
		case xml.EndElement:
			return out, nil
		case xml.CharData:
			if len(bytes.TrimSpace(t)) > 0 {
				return nil, errors.New("xupdate: stray text in <transactions>")
			}
		}
	}
}

func readTransactionFrom(dec *xml.Decoder, start xml.StartElement) (*update.Transaction, error) {
	tx := &update.Transaction{Conf: 1}
	for _, a := range start.Attr {
		switch a.Name.Local {
		case "confidence":
			c, err := strconv.ParseFloat(a.Value, 64)
			if err != nil {
				return nil, fmt.Errorf("xupdate: bad confidence %q", a.Value)
			}
			tx.Conf = c
		case "event":
			tx.ConfEvent = event.ID(a.Value)
		default:
			return nil, fmt.Errorf("xupdate: unknown attribute %q on <transaction>", a.Name.Local)
		}
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xupdate: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "where":
				text, err := elementText(dec)
				if err != nil {
					return nil, err
				}
				q, err := tpwj.ParseQuery(strings.TrimSpace(text))
				if err != nil {
					return nil, fmt.Errorf("xupdate: in <where>: %w", err)
				}
				tx.Query = q
			case "insert":
				varName, err := varAttr(t, "into")
				if err != nil {
					return nil, err
				}
				subtree, err := xmlio.ReadSubtree(dec)
				if err != nil {
					return nil, fmt.Errorf("xupdate: in <insert>: %w", err)
				}
				if err := skipToEnd(dec); err != nil { // consume </insert>
					return nil, err
				}
				tx.Ops = append(tx.Ops, update.Insert(varName, subtree))
			case "delete":
				varName, err := varAttr(t, "select")
				if err != nil {
					return nil, err
				}
				if err := skipToEnd(dec); err != nil {
					return nil, err
				}
				tx.Ops = append(tx.Ops, update.Delete(varName))
			default:
				return nil, fmt.Errorf("xupdate: unexpected <%s> in <transaction>", t.Name.Local)
			}
		case xml.EndElement:
			if tx.Query == nil {
				return nil, errors.New("xupdate: <transaction> without <where>")
			}
			if err := tx.Validate(); err != nil {
				return nil, err
			}
			return tx, nil
		case xml.CharData:
			if len(bytes.TrimSpace(t)) > 0 {
				return nil, errors.New("xupdate: stray text in <transaction>")
			}
		}
	}
}

// varAttr extracts a variable reference ("$v" or "v") from the given
// attribute.
func varAttr(start xml.StartElement, attr string) (string, error) {
	for _, a := range start.Attr {
		if a.Name.Local == attr {
			return strings.TrimPrefix(a.Value, "$"), nil
		}
	}
	return "", fmt.Errorf("xupdate: <%s> missing %q attribute", start.Name.Local, attr)
}

// elementText collects the text content of the current element up to its
// end tag, rejecting child elements.
func elementText(dec *xml.Decoder) (string, error) {
	var b strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("xupdate: %w", err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			b.Write(t)
		case xml.EndElement:
			return b.String(), nil
		case xml.StartElement:
			return "", fmt.Errorf("xupdate: unexpected <%s> inside text element", t.Name.Local)
		}
	}
}

func nextStart(dec *xml.Decoder) (xml.StartElement, error) {
	for {
		tok, err := dec.Token()
		if err != nil {
			return xml.StartElement{}, fmt.Errorf("xupdate: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			return t, nil
		case xml.CharData:
			if len(bytes.TrimSpace(t)) > 0 {
				return xml.StartElement{}, errors.New("xupdate: unexpected text before element")
			}
		}
	}
}

func skipToEnd(dec *xml.Decoder) error {
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("xupdate: %w", err)
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			if depth == 0 {
				return nil
			}
			depth--
		}
	}
}

// WriteTransaction serializes a transaction in the format accepted by
// ReadTransaction.
func WriteTransaction(w io.Writer, tx *update.Transaction) error {
	if err := tx.Validate(); err != nil {
		return err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, `<transaction confidence="%s"`, strconv.FormatFloat(tx.Conf, 'g', -1, 64))
	if tx.ConfEvent != "" {
		fmt.Fprintf(&b, ` event="%s"`, tx.ConfEvent)
	}
	b.WriteString(">\n  <where>")
	if err := xml.EscapeText(&b, []byte(tpwj.FormatQuery(tx.Query))); err != nil {
		return err
	}
	b.WriteString("</where>\n")
	for _, op := range tx.Ops {
		switch op.Kind {
		case update.OpInsert:
			fmt.Fprintf(&b, `  <insert into="$%s">`, op.Var)
			sub, err := xmlio.TreeXML(op.Subtree)
			if err != nil {
				return err
			}
			b.Write(sub)
			b.WriteString("</insert>\n")
		case update.OpDelete:
			fmt.Fprintf(&b, `  <delete select="$%s"/>`+"\n", op.Var)
		}
	}
	b.WriteString("</transaction>\n")
	_, err := w.Write(b.Bytes())
	return err
}

// TransactionXML returns the XML serialization of a transaction.
func TransactionXML(tx *update.Transaction) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteTransaction(&buf, tx); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
