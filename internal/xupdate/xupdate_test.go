package xupdate

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
)

const slide15TX = `<transaction confidence="0.9" event="w3">
  <where>A $a(B $b, C $c)</where>
  <insert into="$a"><D/></insert>
  <delete select="$c"/>
</transaction>`

func TestParseTransactionSlide15(t *testing.T) {
	tx, err := ParseTransaction([]byte(slide15TX))
	if err != nil {
		t.Fatal(err)
	}
	if tx.Conf != 0.9 {
		t.Errorf("Conf = %v", tx.Conf)
	}
	if tx.ConfEvent != "w3" {
		t.Errorf("ConfEvent = %q", tx.ConfEvent)
	}
	if got := tpwj.FormatQuery(tx.Query); got != "A $a(B $b, C $c)" {
		t.Errorf("query = %q", got)
	}
	if len(tx.Ops) != 2 {
		t.Fatalf("ops = %d", len(tx.Ops))
	}
	if tx.Ops[0].Kind != update.OpInsert || tx.Ops[0].Var != "a" ||
		!tree.Equal(tx.Ops[0].Subtree, tree.MustParse("D")) {
		t.Errorf("op0 = %+v", tx.Ops[0])
	}
	if tx.Ops[1].Kind != update.OpDelete || tx.Ops[1].Var != "c" {
		t.Errorf("op1 = %+v", tx.Ops[1])
	}
}

// TestParsedTransactionReproducesSlide15 wires the parsed XUpdate
// document through ApplyFuzzy and checks the slide-15 output.
func TestParsedTransactionReproducesSlide15(t *testing.T) {
	tx, err := ParseTransaction([]byte(slide15TX))
	if err != nil {
		t.Fatal(err)
	}
	ft := fuzzy.MustParseTree("A(B[w1], C[w2])",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
	got, _, err := tx.ApplyFuzzy(ft)
	if err != nil {
		t.Fatal(err)
	}
	want := fuzzy.MustParse("A(B[w1], C[!w1 w2], C[w1 w2 !w3], D[w1 w2 w3])")
	if !fuzzy.Equal(got.Root, want) {
		t.Errorf("result = %s", fuzzy.Format(got.Root))
	}
}

func TestParseTransactionDefaults(t *testing.T) {
	tx, err := ParseTransaction([]byte(
		`<transaction><where>A(B $x)</where><delete select="x"/></transaction>`))
	if err != nil {
		t.Fatal(err)
	}
	if tx.Conf != 1 {
		t.Errorf("default confidence = %v, want 1", tx.Conf)
	}
	if tx.Ops[0].Var != "x" {
		t.Errorf("variable without $ prefix: %q", tx.Ops[0].Var)
	}
}

func TestParseTransactionInsertWithContent(t *testing.T) {
	tx, err := ParseTransaction([]byte(`<transaction confidence="0.5">
	  <where>A(B $x)</where>
	  <insert into="$x"><person name="Alice"><city>Paris</city></person></insert>
	</transaction>`))
	if err != nil {
		t.Fatal(err)
	}
	want := tree.MustParse("person(name:Alice, city:Paris)")
	if !tree.Equal(tx.Ops[0].Subtree, want) {
		t.Errorf("subtree = %s", tree.Format(tx.Ops[0].Subtree))
	}
}

func TestParseTransactionErrors(t *testing.T) {
	cases := []struct {
		name, xml string
	}{
		{"wrong root", `<nope/>`},
		{"no where", `<transaction><delete select="x"/></transaction>`},
		{"bad query", `<transaction><where>A((</where><delete select="x"/></transaction>`},
		{"bad confidence", `<transaction confidence="zzz"><where>A $x</where><delete select="x"/></transaction>`},
		{"confidence out of range", `<transaction confidence="2"><where>A(B $x)</where><delete select="x"/></transaction>`},
		{"unknown attribute", `<transaction bogus="1"><where>A(B $x)</where><delete select="x"/></transaction>`},
		{"insert without into", `<transaction><where>A(B $x)</where><insert><D/></insert></transaction>`},
		{"delete without select", `<transaction><where>A(B $x)</where><delete/></transaction>`},
		{"unbound variable", `<transaction><where>A(B $x)</where><delete select="y"/></transaction>`},
		{"no ops", `<transaction><where>A(B $x)</where></transaction>`},
		{"stray element", `<transaction><where>A(B $x)</where><bogus/><delete select="x"/></transaction>`},
		{"element in where", `<transaction><where><q/></where><delete select="x"/></transaction>`},
		{"stray text", `<transaction>hi<where>A(B $x)</where><delete select="x"/></transaction>`},
		{"mixed insert content", `<transaction><where>A(B $x)</where><insert into="$x"><D>t<E/></D></insert></transaction>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseTransaction([]byte(tc.xml)); err == nil {
				t.Errorf("accepted %q", tc.xml)
			}
		})
	}
}

func TestReadTransactions(t *testing.T) {
	doc := `<transactions>
	  <transaction confidence="0.5"><where>A(B $x)</where><delete select="$x"/></transaction>
	  <transaction confidence="0.6"><where>A(C $y)</where><insert into="$y"><N/></insert></transaction>
	</transactions>`
	txs, err := ReadTransactions(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 2 {
		t.Fatalf("transactions = %d", len(txs))
	}
	if txs[0].Conf != 0.5 || txs[1].Conf != 0.6 {
		t.Errorf("confidences = %v, %v", txs[0].Conf, txs[1].Conf)
	}
}

func TestReadTransactionsErrors(t *testing.T) {
	if _, err := ReadTransactions(strings.NewReader(`<transaction/>`)); err == nil {
		t.Error("wrong root accepted")
	}
	if _, err := ReadTransactions(strings.NewReader(`<transactions><bogus/></transactions>`)); err == nil {
		t.Error("stray element accepted")
	}
}

func TestWriteTransactionRoundTrip(t *testing.T) {
	orig := update.New(
		tpwj.MustParseQuery("A $a(B $b, C $c) where $b = $c"),
		0.75,
		update.Insert("a", tree.MustParse("D(E:val)")),
		update.Delete("c"),
	)
	orig.ConfEvent = "w9"
	data, err := TransactionXML(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTransaction(data)
	if err != nil {
		t.Fatalf("re-parse of %s: %v", data, err)
	}
	if back.Conf != orig.Conf || back.ConfEvent != orig.ConfEvent {
		t.Errorf("conf round trip: %v %q", back.Conf, back.ConfEvent)
	}
	if tpwj.FormatQuery(back.Query) != tpwj.FormatQuery(orig.Query) {
		t.Errorf("query round trip: %q", tpwj.FormatQuery(back.Query))
	}
	if len(back.Ops) != 2 || !tree.Equal(back.Ops[0].Subtree, orig.Ops[0].Subtree) {
		t.Errorf("ops round trip: %+v", back.Ops)
	}
}

func TestWriteTransactionValidates(t *testing.T) {
	bad := update.New(tpwj.MustParseQuery("A(B $x)"), 2, update.Delete("x"))
	if _, err := TransactionXML(bad); err == nil {
		t.Error("invalid transaction serialized")
	}
}
