// Package update implements the probabilistic update transactions of
// Abiteboul and Senellart (EDBT 2006): a TPWJ query locating the
// operations, a set of elementary insertions and deletions of subtrees
// addressed through the query's variables, and a confidence.
//
// Semantics (slide 10). On a possible-worlds set, a transaction with
// confidence c leaves unselected worlds unchanged and splits every
// selected world (t, p) into (τ(t), p·c) and (t, p·(1−c)), where τ
// applies the instantiated operations. A transaction applies its
// operations once per valuation of the query: first all insertions, then
// all deletions, all computed against the pre-transaction tree.
//
// On fuzzy trees (slides 14–15), the same transaction is applied directly
// to the conditioned tree: one fresh confidence event w (P(w) = c) is
// minted per transaction; an insertion for a valuation with match
// condition γ attaches the new subtree conditioned on γ ∧ w; a deletion
// of node v rewrites v into a sequence of conditioned copies implementing
// v ∧ ¬(γ ∧ w), which may grow the tree exponentially under complex
// dependencies — the blow-up the paper warns about.
package update

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/event"
	"repro/internal/tpwj"
	"repro/internal/tree"
)

// OpKind distinguishes the elementary operations.
type OpKind int

const (
	// OpInsert inserts a copy of a subtree as a new child of the target.
	OpInsert OpKind = iota
	// OpDelete deletes the subtree rooted at the target.
	OpDelete
)

// String returns "insert" or "delete".
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one elementary operation of a transaction, addressed through a
// variable of the transaction's query.
type Op struct {
	Kind OpKind
	// Var names the query variable whose matched node the operation
	// targets (insertion parent or deletion root).
	Var string
	// Subtree is the content to insert (OpInsert only). It is cloned on
	// every application.
	Subtree *tree.Node
}

// Insert builds an insertion operation.
func Insert(varName string, subtree *tree.Node) Op {
	return Op{Kind: OpInsert, Var: varName, Subtree: subtree}
}

// Delete builds a deletion operation.
func Delete(varName string) Op {
	return Op{Kind: OpDelete, Var: varName}
}

// Transaction is a probabilistic update transaction.
type Transaction struct {
	// Query locates the operations; its variables name the targets.
	Query *tpwj.Query
	// Ops are the elementary operations, applied once per valuation
	// (insertions before deletions).
	Ops []Op
	// Conf is the confidence c ∈ [0, 1] that the transaction reflects
	// reality. Conf 1 is a certain update; Conf 0 is a no-op.
	Conf float64
	// ConfEvent optionally names the confidence event minted by
	// ApplyFuzzy (e.g. "w3" to mirror slide 15). When empty, a fresh
	// "uN" name is generated. Ignored when Conf is 1.
	ConfEvent event.ID
}

// New returns a transaction over the given query with confidence conf.
func New(q *tpwj.Query, conf float64, ops ...Op) *Transaction {
	return &Transaction{Query: q, Ops: ops, Conf: conf}
}

// Validate checks that the transaction is well formed: a valid query,
// confidence within [0, 1], at least one operation, operations targeting
// bound variables, and valid insertion subtrees.
func (tx *Transaction) Validate() error {
	if tx == nil {
		return errors.New("update: nil transaction")
	}
	if err := tx.Query.Validate(); err != nil {
		return err
	}
	if tx.Query.HasNegation() {
		// A negated match condition is not a conjunction, so it cannot
		// be attached to fuzzy-tree nodes; the update language is the
		// paper's positive TPWJ core.
		return errors.New("update: transaction queries cannot use negation")
	}
	if tx.Query.Ordered {
		return errors.New("update: transaction queries cannot be ordered (the model is unordered)")
	}
	if tx.Conf < 0 || tx.Conf > 1 || math.IsNaN(tx.Conf) {
		return fmt.Errorf("update: confidence %v outside [0,1]", tx.Conf)
	}
	if len(tx.Ops) == 0 {
		return errors.New("update: transaction with no operations")
	}
	vars := tx.Query.Vars()
	for i, op := range tx.Ops {
		if _, ok := vars[op.Var]; !ok {
			return fmt.Errorf("update: op %d targets unbound variable $%s", i, op.Var)
		}
		switch op.Kind {
		case OpInsert:
			if op.Subtree == nil {
				return fmt.Errorf("update: op %d: insert without subtree", i)
			}
			if err := op.Subtree.Validate(); err != nil {
				return fmt.Errorf("update: op %d: %w", i, err)
			}
		case OpDelete:
			if op.Subtree != nil {
				return fmt.Errorf("update: op %d: delete with subtree", i)
			}
		default:
			return fmt.Errorf("update: op %d: unknown kind %d", i, int(op.Kind))
		}
	}
	return nil
}

// String renders the transaction for logs and debugging.
func (tx *Transaction) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "update conf=%g where %s:", tx.Conf, tpwj.FormatQuery(tx.Query))
	for _, op := range tx.Ops {
		switch op.Kind {
		case OpInsert:
			fmt.Fprintf(&b, " insert %s into $%s;", tree.Format(op.Subtree), op.Var)
		case OpDelete:
			fmt.Fprintf(&b, " delete $%s;", op.Var)
		}
	}
	return b.String()
}
