package update

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
)

// FuzzyStats reports what ApplyFuzzy did.
type FuzzyStats struct {
	// Valuations is the number of (satisfiable) valuations of the query
	// on the underlying tree.
	Valuations int
	// Event is the confidence event minted for the transaction, or ""
	// when none was needed (confidence 1, or nothing matched).
	Event event.ID
	// Inserted counts attached subtrees.
	Inserted int
	// DeletedOutright counts nodes removed without expansion (the match
	// condition was implied by the node's own existence).
	DeletedOutright int
	// Copies counts conditioned copies created by deletion expansion;
	// this is the quantity that grows exponentially under complex
	// dependencies (slide 14, experiment E5).
	Copies int

	// The structural footprint of the transaction, recorded for
	// materialized-view maintenance (internal/view): which parts of the
	// document the update could have changed. Label paths are rooted
	// slash-joined label sequences ("/A/B"); they identify positions up
	// to same-labeled siblings, which is all the (conservative) overlap
	// analysis needs.

	// InsertedLabels are the distinct labels appearing in subtrees the
	// transaction attached. A query that tests none of these labels
	// (and has no wildcard) cannot gain a valuation from the inserts.
	InsertedLabels []string
	// DeleteTargetPaths are the distinct label paths of deletion
	// targets. Deletion rewrites the target into conditioned copies (or
	// removes it), so conditions changed — and structure was duplicated
	// or removed — only at or below these paths.
	DeleteTargetPaths []string
}

// ApplyFuzzy applies the transaction directly to a fuzzy tree
// (slides 14–15), returning a new tree; the input is unchanged.
//
// One fresh confidence event w with P(w) = Conf is minted per transaction
// (none when Conf = 1). For every valuation with satisfiable match
// condition γ (the conjunction of the conditions of the matched nodes and
// their ancestors):
//
//   - an insertion into target v attaches the subtree conditioned on
//     (γ ∧ w) minus the literals already implied by v's path, so the new
//     node exists exactly in the worlds where the update applies;
//
//   - a deletion of target v computes the residual ρ = (γ ∧ w) minus v's
//     path literals; if ρ is empty, v is simply removed; otherwise v is
//     rewritten into the |ρ| conditioned copies
//
//     v[cond ∧ ¬l₁], v[cond ∧ l₁ ∧ ¬l₂], …, v[cond ∧ l₁ … l_{k−1} ∧ ¬l_k]
//
//     which together exist exactly when v existed and the deletion did
//     not apply — the construction of slide 15.
//
// By the commutation theorem (slide 14), expanding the result equals
// applying the transaction to the expansion — tested property,
// experiment E4.
func (tx *Transaction) ApplyFuzzy(ft *fuzzy.Tree) (*fuzzy.Tree, *FuzzyStats, error) {
	if err := tx.Validate(); err != nil {
		return nil, nil, err
	}
	if err := ft.Validate(); err != nil {
		return nil, nil, err
	}
	work := ft.Clone()
	stats := &FuzzyStats{}

	doc, toFuzzy := underlyingWithMap(work)
	ix := tree.NewIndex(doc)

	// Pre-update navigational data over the fuzzy tree.
	fparent := make(map[*fuzzy.Node]*fuzzy.Node)
	fpath := make(map[*fuzzy.Node]event.Condition)
	var nav func(n *fuzzy.Node, parent *fuzzy.Node, path event.Condition)
	nav = func(n *fuzzy.Node, parent *fuzzy.Node, path event.Condition) {
		fparent[n] = parent
		eff := path.And(n.Cond)
		fpath[n] = eff
		for _, c := range n.Children {
			nav(c, n, eff)
		}
	}
	nav(work.Root, nil, nil)

	// Collect per-valuation operation instances against the pre-update
	// tree.
	vars := tx.Query.Vars()
	type insApp struct {
		target  *fuzzy.Node
		subtree *tree.Node
		cond    event.Condition // residual, before the confidence event
	}
	var inserts []insApp
	delRho := make(map[*fuzzy.Node][]event.Condition)
	delSeen := make(map[*fuzzy.Node]map[string]bool)
	var delOrder []*fuzzy.Node

	err := tpwj.ForEachMatch(tx.Query, ix, func(m tpwj.Match) bool {
		gamma := matchCondition(ix, m, toFuzzy)
		if !gamma.Satisfiable() {
			return true // valuation exists in no world
		}
		stats.Valuations++
		for _, op := range tx.Ops {
			target := toFuzzy[m[vars[op.Var]]]
			switch op.Kind {
			case OpInsert:
				inserts = append(inserts, insApp{
					target:  target,
					subtree: op.Subtree,
					cond:    gamma.Minus(fpath[target]),
				})
			case OpDelete:
				rho := gamma.Minus(fpath[target])
				key := rho.String()
				if delSeen[target] == nil {
					delSeen[target] = make(map[string]bool)
					delOrder = append(delOrder, target)
				}
				if !delSeen[target][key] {
					delSeen[target][key] = true
					delRho[target] = append(delRho[target], rho)
				}
			}
		}
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	if stats.Valuations == 0 {
		return work, stats, nil
	}

	// Record the structural footprint (on the pre-update tree, before
	// any mutation moves nodes around) for view maintenance.
	insLabels := make(map[string]bool)
	for _, ins := range inserts {
		ins.subtree.Walk(func(n *tree.Node) bool {
			insLabels[n.Label] = true
			return true
		})
	}
	stats.InsertedLabels = sortedKeys(insLabels)
	delPaths := make(map[string]bool)
	for _, target := range delOrder {
		delPaths[labelPath(fparent, target)] = true
	}
	stats.DeleteTargetPaths = sortedKeys(delPaths)

	// Mint the confidence event.
	var confLit event.Condition
	if tx.Conf < 1 {
		id := tx.ConfEvent
		if id == "" {
			fresh, err := work.Table.Fresh("u", tx.Conf)
			if err != nil {
				return nil, nil, err
			}
			id = fresh
		} else {
			if work.Table.Has(id) {
				return nil, nil, fmt.Errorf("update: confidence event %q already in table", id)
			}
			if err := work.Table.Set(id, tx.Conf); err != nil {
				return nil, nil, err
			}
		}
		stats.Event = id
		confLit = event.Cond(event.Pos(id))
	}

	// Insertions first, as in ApplyData.
	for _, ins := range inserts {
		if ins.target.Value != "" {
			return nil, nil, fmt.Errorf("update: insert under value leaf %q would create mixed content", ins.target.Label)
		}
		child := fuzzy.FromData(ins.subtree)
		child.Cond = ins.cond.And(confLit)
		ins.target.Add(child)
		stats.Inserted++
	}

	// Deletions, deepest target first so that expanding a node happens
	// after all deletions inside its subtree are done.
	sort.SliceStable(delOrder, func(i, j int) bool {
		di := len(fpathDepth(fparent, delOrder[i]))
		dj := len(fpathDepth(fparent, delOrder[j]))
		return di > dj
	})
	for _, target := range delOrder {
		if target == work.Root {
			return nil, nil, fmt.Errorf("update: cannot delete the document root")
		}
		parent := fparent[target]
		copies := []*fuzzy.Node{target}
		for _, rho := range delRho[target] {
			// The confidence literal goes last, so the expansion tries
			// the pre-existing condition literals first and only then
			// the fresh event — reproducing the copy set of slide 15.
			delta := append(rho.Clone(), confLit...)
			if len(delta) == 0 {
				// The deletion applies whenever the node exists.
				for _, c := range copies {
					parent.RemoveChild(c)
					stats.DeletedOutright++
				}
				copies = nil
				break
			}
			var next []*fuzzy.Node
			for _, c := range copies {
				repl := expandDeletion(c, delta)
				parent.ReplaceChild(c, repl...)
				next = append(next, repl...)
			}
			stats.Copies += len(next)
			copies = next
		}
	}
	return work, stats, nil
}

// expandDeletion rewrites one node copy c for a deletion with residual
// condition δ = l₁…l_k, producing up to k conditioned copies
// c[cond ∧ l₁…l_{i−1} ∧ ¬l_i]. Copies whose condition is unsatisfiable on
// its own are dropped.
func expandDeletion(c *fuzzy.Node, delta event.Condition) []*fuzzy.Node {
	var out []*fuzzy.Node
	var prefix event.Condition
	for _, l := range delta {
		cond := c.Cond.And(prefix).And(event.Cond(l.Negate()))
		if cond.Satisfiable() {
			copy := c.Clone()
			copy.Cond = cond
			out = append(out, copy)
		}
		prefix = prefix.And(event.Cond(l))
	}
	return out
}

// matchCondition returns γ: the conjunction of the conditions of all
// nodes required for the valuation to exist (matched nodes and their
// ancestors).
func matchCondition(ix *tree.Index, m tpwj.Match, toFuzzy map[*tree.Node]*fuzzy.Node) event.Condition {
	seen := make(map[*tree.Node]bool)
	var gamma event.Condition
	for _, n := range m {
		for _, a := range ix.PathToRoot(n) {
			if seen[a] {
				continue
			}
			seen[a] = true
			gamma = append(gamma, toFuzzy[a].Cond...)
		}
	}
	return gamma.Normalize()
}

// labelPath returns n's rooted label path "/A/B/C".
func labelPath(parent map[*fuzzy.Node]*fuzzy.Node, n *fuzzy.Node) string {
	var labels []string
	for p := n; p != nil; p = parent[p] {
		labels = append(labels, p.Label)
	}
	var b strings.Builder
	for i := len(labels) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(labels[i])
	}
	return b.String()
}

// sortedKeys returns the keys of a string set, sorted.
func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fpathDepth returns the ancestor chain of n (used for depth ordering).
func fpathDepth(parent map[*fuzzy.Node]*fuzzy.Node, n *fuzzy.Node) []*fuzzy.Node {
	var chain []*fuzzy.Node
	for p := n; p != nil; p = parent[p] {
		chain = append(chain, p)
	}
	return chain
}

// underlyingWithMap strips conditions, returning the data tree and the
// mapping from data nodes back to fuzzy nodes.
func underlyingWithMap(ft *fuzzy.Tree) (*tree.Node, map[*tree.Node]*fuzzy.Node) {
	m := make(map[*tree.Node]*fuzzy.Node)
	var conv func(n *fuzzy.Node) *tree.Node
	conv = func(n *fuzzy.Node) *tree.Node {
		d := &tree.Node{Label: n.Label, Value: n.Value}
		m[d] = n
		for _, c := range n.Children {
			d.Children = append(d.Children, conv(c))
		}
		return d
	}
	return conv(ft.Root), m
}
