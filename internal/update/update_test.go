package update

import (
	"strings"
	"testing"

	"repro/internal/tpwj"
	"repro/internal/tree"
)

func TestValidate(t *testing.T) {
	q := tpwj.MustParseQuery("A(B $x)")
	good := New(q, 0.9, Insert("x", tree.MustParse("N:v")))
	if err := good.Validate(); err != nil {
		t.Errorf("valid transaction rejected: %v", err)
	}

	cases := []struct {
		name string
		tx   *Transaction
	}{
		{"nil", nil},
		{"bad confidence", New(q, 1.5, Delete("x"))},
		{"negative confidence", New(q, -0.1, Delete("x"))},
		{"no ops", New(q, 0.5)},
		{"unbound var", New(q, 0.5, Delete("nope"))},
		{"insert nil subtree", New(q, 0.5, Op{Kind: OpInsert, Var: "x"})},
		{"delete with subtree", New(q, 0.5, Op{Kind: OpDelete, Var: "x", Subtree: tree.New("N")})},
		{"invalid subtree", New(q, 0.5, Insert("x", &tree.Node{Label: ""}))},
		{"unknown kind", New(q, 0.5, Op{Kind: OpKind(99), Var: "x"})},
		{"invalid query", New(tpwj.NewQuery(tpwj.NewPNode("")), 0.5, Delete("x"))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.tx.Validate(); err == nil {
				t.Error("invalid transaction accepted")
			}
		})
	}
}

func TestApplyDataInsert(t *testing.T) {
	tx := New(tpwj.MustParseQuery("A(B $x)"), 1, Insert("x", tree.MustParse("N:v")))
	got, selected, err := tx.ApplyData(tree.MustParse("A(B, C)"))
	if err != nil {
		t.Fatal(err)
	}
	if !selected {
		t.Error("should be selected")
	}
	if !tree.Equal(got, tree.MustParse("A(B(N:v), C)")) {
		t.Errorf("result = %s", tree.Format(got))
	}
}

func TestApplyDataInsertPerValuation(t *testing.T) {
	// Two B's: each valuation inserts its own copy (under its own B).
	tx := New(tpwj.MustParseQuery("A(B $x)"), 1, Insert("x", tree.MustParse("N")))
	got, _, err := tx.ApplyData(tree.MustParse("A(B, B)"))
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(got, tree.MustParse("A(B(N), B(N))")) {
		t.Errorf("result = %s", tree.Format(got))
	}
}

func TestApplyDataDelete(t *testing.T) {
	tx := New(tpwj.MustParseQuery("A(B $x)"), 1, Delete("x"))
	got, _, err := tx.ApplyData(tree.MustParse("A(B(C), D)"))
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(got, tree.MustParse("A(D)")) {
		t.Errorf("result = %s", tree.Format(got))
	}
}

func TestApplyDataNotSelected(t *testing.T) {
	tx := New(tpwj.MustParseQuery("A(Z $x)"), 1, Delete("x"))
	doc := tree.MustParse("A(B)")
	got, selected, err := tx.ApplyData(doc)
	if err != nil {
		t.Fatal(err)
	}
	if selected {
		t.Error("should not be selected")
	}
	if !tree.Equal(got, doc) {
		t.Error("unselected document should be unchanged")
	}
	if got == doc {
		t.Error("result should be a copy, not the input")
	}
}

func TestApplyDataInputUnchanged(t *testing.T) {
	tx := New(tpwj.MustParseQuery("A(B $x)"), 1, Delete("x"))
	doc := tree.MustParse("A(B)")
	if _, _, err := tx.ApplyData(doc); err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(doc, tree.MustParse("A(B)")) {
		t.Error("ApplyData mutated its input")
	}
}

func TestApplyDataInsertThenDeleteSameTransaction(t *testing.T) {
	// Insert under B and delete B: the deletion wins (inserts first,
	// then deletes).
	q := tpwj.MustParseQuery("A(B $x)")
	tx := New(q, 1, Insert("x", tree.MustParse("N")), Delete("x"))
	got, _, err := tx.ApplyData(tree.MustParse("A(B, C)"))
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(got, tree.MustParse("A(C)")) {
		t.Errorf("result = %s", tree.Format(got))
	}
}

func TestApplyDataConditionalReplacement(t *testing.T) {
	// The slide-15 shape on a plain tree: replace C by D when B present.
	q := tpwj.MustParseQuery("A $a(B $b, C $c)")
	tx := New(q, 1, Insert("a", tree.MustParse("D")), Delete("c"))
	got, _, err := tx.ApplyData(tree.MustParse("A(B, C)"))
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(got, tree.MustParse("A(B, D)")) {
		t.Errorf("result = %s", tree.Format(got))
	}
	// Without B, nothing happens.
	got2, selected, err := tx.ApplyData(tree.MustParse("A(C)"))
	if err != nil {
		t.Fatal(err)
	}
	if selected || !tree.Equal(got2, tree.MustParse("A(C)")) {
		t.Errorf("unmatched doc changed: %s", tree.Format(got2))
	}
}

func TestApplyDataNestedDeletes(t *testing.T) {
	// Delete both a node and its descendant in one transaction.
	q := tpwj.MustParseQuery("A(B $x(//D $y))")
	tx := New(q, 1, Delete("x"), Delete("y"))
	got, _, err := tx.ApplyData(tree.MustParse("A(B(C(D)), E)"))
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(got, tree.MustParse("A(E)")) {
		t.Errorf("result = %s", tree.Format(got))
	}
}

func TestApplyDataErrors(t *testing.T) {
	// Deleting the root.
	txRoot := New(tpwj.MustParseQuery("A $x"), 1, Delete("x"))
	if _, _, err := txRoot.ApplyData(tree.MustParse("A(B)")); err == nil {
		t.Error("root deletion accepted")
	}
	// Inserting under a value leaf.
	txLeaf := New(tpwj.MustParseQuery("A(B $x)"), 1, Insert("x", tree.MustParse("N")))
	if _, _, err := txLeaf.ApplyData(tree.MustParse("A(B:val)")); err == nil {
		t.Error("insert under value leaf accepted")
	}
	// Invalid document.
	txOK := New(tpwj.MustParseQuery("A(B $x)"), 1, Delete("x"))
	bad := &tree.Node{Label: "A", Value: "v", Children: []*tree.Node{tree.New("B")}}
	if _, _, err := txOK.ApplyData(bad); err == nil {
		t.Error("invalid document accepted")
	}
}

func TestTransactionString(t *testing.T) {
	tx := New(tpwj.MustParseQuery("A(B $x)"), 0.9,
		Insert("x", tree.MustParse("N:v")), Delete("x"))
	s := tx.String()
	for _, want := range []string{"conf=0.9", "A(B $x)", "insert N:v into $x", "delete $x"} {
		if !strings.Contains(s, want) {
			t.Errorf("String = %q, missing %q", s, want)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" {
		t.Error("OpKind strings wrong")
	}
	if OpKind(42).String() != "OpKind(42)" {
		t.Error("unknown OpKind string wrong")
	}
}
