package update

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/worlds"
)

// TestGoldenSlide15 reproduces the conditional-replacement example of
// slide 15 (E6) literally: on A(B[w1], C[w2]) with w1=0.8, w2=0.7,
// replacing C by D if B is present with confidence 0.9 (event w3) yields
//
//	A( B[w1], C[!w1 w2], C[w1 w2 !w3], D[w1 w2 w3] )
func TestGoldenSlide15(t *testing.T) {
	ft := fuzzy.MustParseTree("A(B[w1], C[w2])",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
	q := tpwj.MustParseQuery("A $a(B $b, C $c)")
	tx := New(q, 0.9, Insert("a", tree.MustParse("D")), Delete("c"))
	tx.ConfEvent = "w3"

	got, stats, err := tx.ApplyFuzzy(ft)
	if err != nil {
		t.Fatal(err)
	}
	want := fuzzy.MustParse("A(B[w1], C[!w1 w2], C[w1 w2 !w3], D[w1 w2 w3])")
	if !fuzzy.Equal(got.Root, want) {
		t.Errorf("result:\n  got  %s\n  want %s", fuzzy.Format(got.Root), fuzzy.Format(want))
	}
	if p, ok := got.Table.Prob("w3"); !ok || p != 0.9 {
		t.Errorf("w3 probability = %v, %v", p, ok)
	}
	if stats.Valuations != 1 || stats.Inserted != 1 || stats.Copies != 2 {
		t.Errorf("stats = %+v", stats)
	}
	// The input must be untouched.
	if !fuzzy.Equal(ft.Root, fuzzy.MustParse("A(B[w1], C[w2])")) {
		t.Error("ApplyFuzzy mutated its input")
	}
	if ft.Table.Has("w3") {
		t.Error("ApplyFuzzy mutated the input table")
	}
}

// TestSlide15Semantics checks the possible-worlds meaning of the slide-15
// result against the paper's update semantics applied to the expansion.
func TestSlide15Semantics(t *testing.T) {
	ft := fuzzy.MustParseTree("A(B[w1], C[w2])",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
	q := tpwj.MustParseQuery("A $a(B $b, C $c)")
	tx := New(q, 0.9, Insert("a", tree.MustParse("D")), Delete("c"))

	fuzzyResult, _, err := tx.ApplyFuzzy(ft)
	if err != nil {
		t.Fatal(err)
	}
	viaFuzzy, err := fuzzyResult.Expand()
	if err != nil {
		t.Fatal(err)
	}

	pw, err := ft.Expand()
	if err != nil {
		t.Fatal(err)
	}
	viaWorlds, err := tx.ApplyWorlds(pw)
	if err != nil {
		t.Fatal(err)
	}
	if !viaFuzzy.Equal(viaWorlds, 1e-9) {
		t.Errorf("commutation failed:\nfuzzy:\n%s\nworlds:\n%s", viaFuzzy, viaWorlds)
	}
}

func TestApplyFuzzyInsertConditions(t *testing.T) {
	// Insertion under a conditioned target: the residual drops the
	// target's own path literals.
	ft := fuzzy.MustParseTree("A(B[w1])", map[event.ID]float64{"w1": 0.8})
	tx := New(tpwj.MustParseQuery("A(B $x)"), 0.5, Insert("x", tree.MustParse("N")))
	tx.ConfEvent = "u"
	got, _, err := tx.ApplyFuzzy(ft)
	if err != nil {
		t.Fatal(err)
	}
	// N's condition must be just "u": w1 is implied by B's existence.
	want := fuzzy.MustParse("A(B[w1](N[u]))")
	if !fuzzy.Equal(got.Root, want) {
		t.Errorf("result = %s", fuzzy.Format(got.Root))
	}
}

func TestApplyFuzzyCertainUpdateNoEvent(t *testing.T) {
	ft := fuzzy.MustParseTree("A(B[w1])", map[event.ID]float64{"w1": 0.8})
	tx := New(tpwj.MustParseQuery("A $a(B $b)"), 1, Insert("a", tree.MustParse("N")))
	got, stats, err := tx.ApplyFuzzy(ft)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Event != "" {
		t.Errorf("certain update should mint no event, got %q", stats.Event)
	}
	// N requires w1 (the match needs B).
	want := fuzzy.MustParse("A(B[w1], N[w1])")
	if !fuzzy.Equal(got.Root, want) {
		t.Errorf("result = %s", fuzzy.Format(got.Root))
	}
}

func TestApplyFuzzyCertainDeleteRemovesOutright(t *testing.T) {
	// Deleting B with confidence 1 where the only condition is B's own
	// path: residual is empty, node removed without copies.
	ft := fuzzy.MustParseTree("A(B[w1])", map[event.ID]float64{"w1": 0.8})
	tx := New(tpwj.MustParseQuery("A(B $x)"), 1, Delete("x"))
	got, stats, err := tx.ApplyFuzzy(ft)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeletedOutright != 1 || stats.Copies != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if !fuzzy.Equal(got.Root, fuzzy.MustParse("A")) {
		t.Errorf("result = %s", fuzzy.Format(got.Root))
	}
}

func TestApplyFuzzyNotSelected(t *testing.T) {
	ft := fuzzy.MustParseTree("A(B[w1])", map[event.ID]float64{"w1": 0.8})
	tx := New(tpwj.MustParseQuery("A(Z $x)"), 0.5, Delete("x"))
	got, stats, err := tx.ApplyFuzzy(ft)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Valuations != 0 || stats.Event != "" {
		t.Errorf("stats = %+v", stats)
	}
	if !fuzzy.Equal(got.Root, ft.Root) {
		t.Error("unselected tree changed")
	}
}

func TestApplyFuzzySkipsContradictoryValuations(t *testing.T) {
	// The valuation pairing B[w1] with C[!w1] can exist in no world.
	ft := fuzzy.MustParseTree("A(B[w1], C[!w1])", map[event.ID]float64{"w1": 0.8})
	tx := New(tpwj.MustParseQuery("A(B $b, C $c)"), 0.5, Delete("c"))
	got, stats, err := tx.ApplyFuzzy(ft)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Valuations != 0 {
		t.Errorf("contradictory valuation counted: %+v", stats)
	}
	if !fuzzy.Equal(got.Root, ft.Root) {
		t.Error("tree changed")
	}
}

func TestApplyFuzzyErrors(t *testing.T) {
	ft := fuzzy.MustParseTree("A(B[w1])", map[event.ID]float64{"w1": 0.8})
	// Root deletion.
	txRoot := New(tpwj.MustParseQuery("A $x"), 0.5, Delete("x"))
	if _, _, err := txRoot.ApplyFuzzy(ft); err == nil {
		t.Error("root deletion accepted")
	}
	// Insert under value leaf.
	ftLeaf := fuzzy.MustParseTree("A(B:val)", nil)
	txLeaf := New(tpwj.MustParseQuery("A(B $x)"), 0.5, Insert("x", tree.MustParse("N")))
	if _, _, err := txLeaf.ApplyFuzzy(ftLeaf); err == nil {
		t.Error("insert under value leaf accepted")
	}
	// Taken confidence-event name.
	txTaken := New(tpwj.MustParseQuery("A(B $x)"), 0.5, Insert("x", tree.MustParse("N")))
	txTaken.ConfEvent = "w1"
	if _, _, err := txTaken.ApplyFuzzy(ft); err == nil {
		t.Error("taken confidence event name accepted")
	}
	// Invalid fuzzy tree.
	bad := fuzzy.New(fuzzy.MustParse("A(B[zz])"))
	txOK := New(tpwj.MustParseQuery("A(B $x)"), 0.5, Delete("x"))
	if _, _, err := txOK.ApplyFuzzy(bad); err == nil {
		t.Error("invalid fuzzy tree accepted")
	}
}

// TestUpdateCommutationRandom is the property form of the update theorem
// (slide 14, E4): for random fuzzy trees and random transactions,
// expand-then-ApplyWorlds equals ApplyFuzzy-then-expand.
func TestUpdateCommutationRandom(t *testing.T) {
	queries := []string{
		"*(//B $x)",
		"A(* $x)",
		"*(B $x, //C $y)",
		"* $x(//* $y)",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := randomFuzzyTree(r, 3, 3)
		q := tpwj.MustParseQuery(queries[r.Intn(len(queries))])
		conf := []float64{0.5, 0.9, 1.0}[r.Intn(3)]

		var ops []Op
		vars := q.VarNames()
		for _, v := range vars {
			switch r.Intn(3) {
			case 0:
				ops = append(ops, Insert(v, tree.MustParse("N:new")))
			case 1:
				ops = append(ops, Delete(v))
			}
		}
		if len(ops) == 0 {
			ops = append(ops, Insert(vars[0], tree.MustParse("N:new")))
		}
		tx := New(q, conf, ops...)

		fuzzyResult, _, err := tx.ApplyFuzzy(ft)
		if err != nil {
			// Root deletion and mixed-content errors must also occur on
			// the worlds side for consistency; skip those seeds.
			pw, eerr := ft.Expand()
			if eerr != nil {
				return true
			}
			if _, werr := tx.ApplyWorlds(pw); werr == nil {
				// Error only when some world is selected; if no world
				// was selected the worlds path never exercises τ.
				sel := false
				for _, w := range pw.Worlds {
					if ok, _ := tpwj.Selects(q, w.Tree); ok {
						sel = true
						break
					}
				}
				if sel {
					t.Logf("seed %d: fuzzy errored (%v) but worlds did not", seed, err)
					return false
				}
			}
			return true
		}
		viaFuzzy, err := fuzzyResult.Expand()
		if err != nil {
			t.Log(err)
			return false
		}

		pw, err := ft.Expand()
		if err != nil {
			t.Log(err)
			return false
		}
		viaWorlds, err := tx.ApplyWorlds(pw)
		if err != nil {
			t.Log(err)
			return false
		}
		if !viaFuzzy.Equal(viaWorlds, 1e-9) {
			t.Logf("seed %d: commutation failed\ndoc: %s\ntx: %s\nfuzzy:\n%s\nworlds:\n%s",
				seed, fuzzy.Format(ft.Root), tx, viaFuzzy, viaWorlds)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// randomFuzzyTree mirrors the generator used in the fuzzy and tpwj tests.
func randomFuzzyTree(r *rand.Rand, depth, nEvents int) *fuzzy.Tree {
	tab := event.NewTable()
	var ids []event.ID
	for i := 0; i < nEvents; i++ {
		id := event.ID(string(rune('a' + i)))
		tab.MustSet(id, 0.1+0.8*r.Float64())
		ids = append(ids, id)
	}
	randCond := func() event.Condition {
		var c event.Condition
		for _, id := range ids {
			switch r.Intn(4) {
			case 0:
				c = append(c, event.Pos(id))
			case 1:
				c = append(c, event.Neg(id))
			}
		}
		return c.Normalize()
	}
	labels := []string{"A", "B", "C"}
	var build func(d int) *fuzzy.Node
	build = func(d int) *fuzzy.Node {
		n := &fuzzy.Node{Label: labels[r.Intn(len(labels))], Cond: randCond()}
		if d <= 0 || r.Intn(3) == 0 {
			return n
		}
		k := r.Intn(3)
		for i := 0; i < k; i++ {
			n.Children = append(n.Children, build(d-1))
		}
		return n
	}
	root := build(depth)
	root.Cond = nil
	return &fuzzy.Tree{Root: root, Table: tab}
}

// TestDeletionGrowthDependent demonstrates the exponential blow-up of
// slide 14 (E5): repeated deletions guarded by overlapping conditions
// multiply the number of conditioned copies.
func TestDeletionGrowthDependent(t *testing.T) {
	// Document with one victim V and k guard nodes G, every deletion
	// conditioned on a different guard.
	probs := map[event.ID]float64{"g1": 0.5, "g2": 0.5, "g3": 0.5}
	ft := fuzzy.MustParseTree("A(V[v], G1[g1], G2[g2], G3[g3])",
		mergeProbs(probs, map[event.ID]float64{"v": 0.5}))

	sizes := []int{ft.Size()}
	cur := ft
	for i, guard := range []string{"G1", "G2", "G3"} {
		q := tpwj.MustParseQuery("A(" + guard + " $g, //V $x)")
		tx := New(q, 0.9, Delete("x"))
		next, _, err := tx.ApplyFuzzy(cur)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		cur = next
		sizes = append(sizes, cur.Size())
	}
	// Each dependent deletion multiplies the V-copies; the tree must
	// grow strictly and super-linearly.
	if !(sizes[1] < sizes[2] && sizes[2] < sizes[3]) {
		t.Errorf("sizes not growing: %v", sizes)
	}
	growth1 := sizes[2] - sizes[1]
	growth2 := sizes[3] - sizes[2]
	if growth2 <= growth1 {
		t.Errorf("growth not accelerating (exponential expected): %v", sizes)
	}
	// Semantics must still commute after the whole sequence.
	viaFuzzy, err := cur.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !viaFuzzy.IsDistribution(worlds.Eps) {
		t.Error("expansion is not a distribution")
	}
}

func mergeProbs(a, b map[event.ID]float64) map[event.ID]float64 {
	out := make(map[event.ID]float64, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

// TestDeletionNoGrowthIndependent contrasts E5: deletions whose match
// condition is implied by the victim's own path cause no copying at all.
func TestDeletionNoGrowthIndependent(t *testing.T) {
	ft := fuzzy.MustParseTree("A(V1[v1], V2[v2], V3[v3])",
		map[event.ID]float64{"v1": 0.5, "v2": 0.5, "v3": 0.5})
	cur := ft
	for _, victim := range []string{"V1", "V2", "V3"} {
		tx := New(tpwj.MustParseQuery("A("+victim+" $x)"), 0.9, Delete("x"))
		next, stats, err := tx.ApplyFuzzy(cur)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Copies != 1 {
			t.Errorf("delete of %s: copies = %d, want 1 (single ¬u copy)", victim, stats.Copies)
		}
		cur = next
	}
	if cur.Size() != ft.Size() {
		t.Errorf("independent deletions should not grow the tree: %d -> %d", ft.Size(), cur.Size())
	}
}

func TestApplyFuzzyMultipleMatchesSameTarget(t *testing.T) {
	// Two guards make two valuations deleting the same victim; the
	// survivor requires both deletions to have missed.
	ft := fuzzy.MustParseTree("A(V, G[g1], G[g2])",
		map[event.ID]float64{"g1": 0.5, "g2": 0.5})
	tx := New(tpwj.MustParseQuery("A(G $g, V $x)"), 0.5, Delete("x"))
	got, _, err := tx.ApplyFuzzy(ft)
	if err != nil {
		t.Fatal(err)
	}
	// Commutation is the safest check of this intricate case.
	viaFuzzy, err := got.Expand()
	if err != nil {
		t.Fatal(err)
	}
	pw, _ := ft.Expand()
	viaWorlds, err := tx.ApplyWorlds(pw)
	if err != nil {
		t.Fatal(err)
	}
	if !viaFuzzy.Equal(viaWorlds, 1e-9) {
		t.Errorf("commutation failed:\nfuzzy:\n%s\nworlds:\n%s", viaFuzzy, viaWorlds)
	}
}

func TestApplyWorldsSemantics(t *testing.T) {
	s := &worlds.Set{}
	s.Add(tree.MustParse("A(B)"), 0.6)
	s.Add(tree.MustParse("A(C)"), 0.4)
	tx := New(tpwj.MustParseQuery("A(B $x)"), 0.5, Delete("x"))
	got, err := tx.ApplyWorlds(s)
	if err != nil {
		t.Fatal(err)
	}
	// Selected world A(B) splits into A() with 0.3 and A(B) with 0.3;
	// A(C) unchanged with 0.4.
	if p := got.ProbOf(tree.MustParse("A")); p != 0.3 {
		t.Errorf("P(A) = %v, want 0.3", p)
	}
	if p := got.ProbOf(tree.MustParse("A(B)")); p != 0.3 {
		t.Errorf("P(A(B)) = %v, want 0.3", p)
	}
	if p := got.ProbOf(tree.MustParse("A(C)")); p != 0.4 {
		t.Errorf("P(A(C)) = %v, want 0.4", p)
	}
	if !got.IsDistribution(worlds.Eps) {
		t.Error("result is not a distribution")
	}
}

func TestApplyWorldsPreservesTotalProbability(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := randomFuzzyTree(r, 3, 2)
		pw, err := ft.Expand()
		if err != nil {
			return true
		}
		tx := New(tpwj.MustParseQuery("*(//* $x)"), 0.7, Insert("x", tree.MustParse("N")))
		got, err := tx.ApplyWorlds(pw)
		if err != nil {
			return true // e.g. insert under value leaf
		}
		return got.IsDistribution(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
