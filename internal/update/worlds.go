package update

import (
	"repro/internal/worlds"
)

// ApplyWorlds applies the transaction to a possible-worlds set, following
// the paper's semantic definition (slide 10) literally:
//
//	{(t, p)   | t not selected by Q}
//	∪ {(τ(t), p·c) | t selected by Q}
//	∪ {(t, p·(1−c)) | t selected by Q}
//
// followed by normalization. This is the exponential baseline against
// which the fuzzy-tree implementation is validated (commutation theorem,
// experiment E4) and benchmarked.
func (tx *Transaction) ApplyWorlds(s *worlds.Set) (*worlds.Set, error) {
	out := &worlds.Set{}
	for _, w := range s.Worlds {
		result, selected, err := tx.ApplyData(w.Tree)
		if err != nil {
			return nil, err
		}
		if !selected {
			out.Add(w.Tree, w.P)
			continue
		}
		if tx.Conf > 0 {
			out.Add(result, w.P*tx.Conf)
		}
		if tx.Conf < 1 {
			out.Add(w.Tree, w.P*(1-tx.Conf))
		}
	}
	return out.Normalize(), nil
}
