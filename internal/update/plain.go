package update

import (
	"fmt"
	"sort"

	"repro/internal/tpwj"
	"repro/internal/tree"
)

// ApplyData applies τ to a plain data tree: it finds all valuations of
// the transaction's query, applies every insertion (once per valuation),
// then every deletion. The input is not modified; the returned tree is
// fresh. selected reports whether the query had at least one valuation
// (if not, the result is an unmodified copy).
//
// Two error conditions exist: inserting under a leaf that carries a
// textual value (which would create mixed content) and deleting the
// document root.
func (tx *Transaction) ApplyData(doc *tree.Node) (result *tree.Node, selected bool, err error) {
	if err := tx.Validate(); err != nil {
		return nil, false, err
	}
	if err := doc.Validate(); err != nil {
		return nil, false, err
	}
	ix := tree.NewIndex(doc)
	vars := tx.Query.Vars()

	type insApp struct {
		target  *tree.Node
		subtree *tree.Node
	}
	var inserts []insApp
	deletes := make(map[*tree.Node]bool)

	err = tpwj.ForEachMatch(tx.Query, ix, func(m tpwj.Match) bool {
		selected = true
		for _, op := range tx.Ops {
			target := m[vars[op.Var]]
			switch op.Kind {
			case OpInsert:
				inserts = append(inserts, insApp{target: target, subtree: op.Subtree})
			case OpDelete:
				deletes[target] = true
			}
		}
		return true
	})
	if err != nil {
		return nil, false, err
	}
	if !selected {
		return doc.Clone(), false, nil
	}

	clone, cloneOf := cloneWithMap(doc)

	for _, ins := range inserts {
		t := cloneOf[ins.target]
		if t.Value != "" {
			return nil, true, fmt.Errorf("update: insert under value leaf %q would create mixed content", t.Label)
		}
		t.Children = append(t.Children, ins.subtree.Clone())
	}

	// Deepest first, so that removing a node whose ancestor is also
	// deleted stays well defined.
	delNodes := make([]*tree.Node, 0, len(deletes))
	for n := range deletes {
		delNodes = append(delNodes, n)
	}
	sort.Slice(delNodes, func(i, j int) bool {
		if d1, d2 := ix.Depth(delNodes[i]), ix.Depth(delNodes[j]); d1 != d2 {
			return d1 > d2
		}
		return ix.Order(delNodes[i]) < ix.Order(delNodes[j])
	})
	for _, n := range delNodes {
		if n == doc {
			return nil, true, fmt.Errorf("update: cannot delete the document root")
		}
		parent := cloneOf[ix.Parent(n)]
		parent.RemoveChild(cloneOf[n])
	}
	return clone, true, nil
}

// cloneWithMap deep-copies a tree and returns the copy together with the
// original→copy node mapping.
func cloneWithMap(n *tree.Node) (*tree.Node, map[*tree.Node]*tree.Node) {
	m := make(map[*tree.Node]*tree.Node)
	var rec func(o *tree.Node) *tree.Node
	rec = func(o *tree.Node) *tree.Node {
		c := &tree.Node{Label: o.Label, Value: o.Value}
		m[o] = c
		for _, ch := range o.Children {
			c.Children = append(c.Children, rec(ch))
		}
		return c
	}
	return rec(n), m
}
