package fuzzyxml_test

import (
	"fmt"
	"os"
	"sort"

	fuzzyxml "repro"
)

// ExampleEvalQuery reproduces the probability computation of slide 13 of
// the paper on the slide-12 document.
func ExampleEvalQuery() {
	doc := fuzzyxml.MustParseFuzzy("A(B[w1 !w2], C(D[w2]))",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})

	answers, err := fuzzyxml.EvalQuery(fuzzyxml.MustParseQuery("A(B)"), doc)
	if err != nil {
		panic(err)
	}
	for _, a := range answers {
		fmt.Printf("%s with probability %.2f\n", fuzzyxml.FormatTree(a.Tree), a.P)
	}
	// Output:
	// A(B) with probability 0.24
}

// ExamplePossibleWorlds expands the slide-12 document into its
// possible-worlds semantics.
func ExamplePossibleWorlds() {
	doc := fuzzyxml.MustParseFuzzy("A(B[w1 !w2], C(D[w2]))",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})

	pw, err := fuzzyxml.PossibleWorlds(doc)
	if err != nil {
		panic(err)
	}
	for _, w := range pw.Worlds {
		fmt.Printf("P=%.2f  %s\n", w.P, fuzzyxml.FormatTree(w.Tree))
	}
	// Output:
	// P=0.70  A(C(D))
	// P=0.24  A(B, C)
	// P=0.06  A(C)
}

// ExampleApplyUpdate reproduces the conditional replacement of slide 15:
// replace C by D if B is present, with confidence 0.9.
func ExampleApplyUpdate() {
	doc := fuzzyxml.MustParseFuzzy("A(B[w1], C[w2])",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})

	tx := fuzzyxml.NewTransaction(
		fuzzyxml.MustParseQuery("A $a(B $b, C $c)"),
		0.9,
		fuzzyxml.InsertOp("a", fuzzyxml.MustParseTree("D")),
		fuzzyxml.DeleteOp("c"),
	)
	tx.ConfEvent = "w3"

	updated, _, err := fuzzyxml.ApplyUpdate(tx, doc)
	if err != nil {
		panic(err)
	}
	fmt.Println(fuzzyxml.FormatFuzzy(updated.Root))
	// Output:
	// A(B[w1], C[!w1 w2], C[w1 w2 !w3], D[w1 w2 w3])
}

// ExampleFromWorlds encodes a possible-worlds distribution as a fuzzy
// tree and recovers it, illustrating the expressiveness theorem.
func ExampleFromWorlds() {
	pw := &fuzzyxml.Worlds{}
	pw.Add(fuzzyxml.MustParseTree("R(X)"), 0.5)
	pw.Add(fuzzyxml.MustParseTree("R(Y)"), 0.5)

	doc, err := fuzzyxml.FromWorlds(pw, "e")
	if err != nil {
		panic(err)
	}
	back, err := fuzzyxml.PossibleWorlds(doc)
	if err != nil {
		panic(err)
	}
	var lines []string
	for _, w := range back.Worlds {
		lines = append(lines, fmt.Sprintf("P=%.2f %s", w.P, fuzzyxml.FormatTree(w.Tree)))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// P=0.50 R(X)
	// P=0.50 R(Y)
}

// ExampleWarehouse_Query stores a document in a warehouse and queries
// it: answers come back with exact probabilities, evaluated on an
// immutable snapshot outside every lock.
func ExampleWarehouse_Query() {
	dir, err := os.MkdirTemp("", "wh")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	w, err := fuzzyxml.OpenWarehouse(dir)
	if err != nil {
		panic(err)
	}
	defer w.Close()

	doc := fuzzyxml.MustParseFuzzy("A(B[w1 !w2], C(D[w2]))",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})
	if err := w.Create("mydoc", doc); err != nil {
		panic(err)
	}

	answers, err := w.Query("mydoc", fuzzyxml.MustParseQuery("A(B)"))
	if err != nil {
		panic(err)
	}
	for _, a := range answers {
		fmt.Printf("%s with probability %.2f\n", fuzzyxml.FormatTree(a.Tree), a.P)
	}
	// Output:
	// A(B) with probability 0.24
}

// ExampleWarehouse_Search runs a probabilistic keyword search against
// a stored document: each answer is a document node with the exact
// probability that it is an SLCA of the keywords in a random world.
func ExampleWarehouse_Search() {
	dir, err := os.MkdirTemp("", "wh")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	w, err := fuzzyxml.OpenWarehouse(dir)
	if err != nil {
		panic(err)
	}
	defer w.Close()

	doc := fuzzyxml.MustParseFuzzy(
		`lib(book[w1](title:kafka, author:max), shelf(book[w2](title:kafka)))`,
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.5})
	if err := w.Create("lib", doc); err != nil {
		panic(err)
	}

	res, err := w.Search("lib", fuzzyxml.KeywordRequest{Keywords: []string{"kafka"}})
	if err != nil {
		panic(err)
	}
	for _, a := range res.Answers {
		fmt.Printf("P=%.2g  %s\n", a.P, a.Path)
	}
	// Output:
	// P=0.8  /lib/book/title
	// P=0.5  /lib/shelf/book/title
}

// ExampleWarehouse_RegisterView registers a materialized view and
// shows its answers staying current across an update — the
// probability flows from 0.24 to 0.24 · 0.5 = 0.12 without the client
// re-issuing the query.
func ExampleWarehouse_RegisterView() {
	dir, err := os.MkdirTemp("", "wh")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	w, err := fuzzyxml.OpenWarehouse(dir)
	if err != nil {
		panic(err)
	}
	defer w.Close()

	doc := fuzzyxml.MustParseFuzzy("A(B[w1 !w2], C(D[w2]))",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})
	if err := w.Create("mydoc", doc); err != nil {
		panic(err)
	}

	reg, err := w.RegisterView("mydoc", "hot", "A(B $x)", "")
	if err != nil {
		panic(err)
	}
	fmt.Printf("registered with %d answer, P=%.2f\n", len(reg.Answers), reg.Answers[0].P)

	// A probabilistic deletion of B with confidence 0.5; the view is
	// maintained as part of the update.
	tx := fuzzyxml.NewTransaction(
		fuzzyxml.MustParseQuery("A(B $b)"), 0.5, fuzzyxml.DeleteOp("b"))
	if _, err := w.Update("mydoc", tx); err != nil {
		panic(err)
	}

	res, err := w.ReadView("mydoc", "hot")
	if err != nil {
		panic(err)
	}
	fmt.Printf("after update: P=%.2f (stale=%v)\n", res.Answers[0].P, res.Stale)
	// Output:
	// registered with 1 answer, P=0.24
	// after update: P=0.12 (stale=false)
}

// ExampleSimplify prunes a redundant document.
func ExampleSimplify() {
	doc := fuzzyxml.MustParseFuzzy("A(B[w1 !w1], C[w2 !w3], C[w2 w3])",
		map[fuzzyxml.EventID]float64{"w1": 0.5, "w2": 0.7, "w3": 0.5})

	stats := fuzzyxml.Simplify(doc)
	fmt.Println(fuzzyxml.FormatFuzzy(doc.Root))
	fmt.Printf("removed %d nodes, merged %d siblings\n",
		stats.NodesRemoved, stats.SiblingsMerged)
	// Output:
	// A(C[w2])
	// removed 1 nodes, merged 1 siblings
}
